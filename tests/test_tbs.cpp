#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "embed/embedding.hpp"
#include "rsynth/tbs.hpp"
#include "verilog/elaborator.hpp"
#include "verilog/generators.hpp"

using namespace qsyn;

namespace
{

std::vector<std::uint64_t> random_permutation( unsigned lines, std::uint64_t seed )
{
  std::vector<std::uint64_t> perm( std::uint64_t{ 1 } << lines );
  std::iota( perm.begin(), perm.end(), 0u );
  std::mt19937_64 rng( seed );
  std::shuffle( perm.begin(), perm.end(), rng );
  return perm;
}

} // namespace

TEST( tbs, identity_permutation_yields_empty_circuit )
{
  std::vector<std::uint64_t> perm( 8 );
  std::iota( perm.begin(), perm.end(), 0u );
  const auto circuit = tbs_synthesize( perm );
  EXPECT_EQ( circuit.num_gates(), 0u );
  EXPECT_EQ( circuit.num_lines(), 3u );
}

TEST( tbs, single_not )
{
  // perm flipping bit 0 everywhere.
  std::vector<std::uint64_t> perm( 4 );
  for ( std::uint64_t i = 0; i < 4; ++i )
  {
    perm[i] = i ^ 1u;
  }
  const auto circuit = tbs_synthesize( perm );
  EXPECT_EQ( circuit.permutation(), perm );
  EXPECT_LE( circuit.num_gates(), 1u );
}

TEST( tbs, cnot_function )
{
  std::vector<std::uint64_t> perm( 4 );
  for ( std::uint64_t i = 0; i < 4; ++i )
  {
    perm[i] = ( i & 1u ) ? i ^ 2u : i;
  }
  const auto circuit = tbs_synthesize( perm );
  EXPECT_EQ( circuit.permutation(), perm );
}

TEST( tbs, three_line_toffoli_recovered_cheaply )
{
  std::vector<std::uint64_t> perm( 8 );
  std::iota( perm.begin(), perm.end(), 0u );
  std::swap( perm[6], perm[7] ); // Toffoli(0,1 -> 2)... controls value 3
  const auto circuit = tbs_synthesize( perm );
  EXPECT_EQ( circuit.permutation(), perm );
  EXPECT_LE( circuit.num_gates(), 2u );
}

TEST( tbs, rejects_non_power_of_two )
{
  EXPECT_THROW( tbs_synthesize( { 0, 2, 1 } ), std::invalid_argument );
}

class tbs_random : public ::testing::TestWithParam<std::tuple<unsigned, bool>>
{
};

TEST_P( tbs_random, realizes_permutation_exactly )
{
  const auto [lines, bidirectional] = GetParam();
  for ( std::uint64_t seed = 1; seed <= 6; ++seed )
  {
    const auto perm = random_permutation( lines, seed * 77u + lines );
    tbs_params params;
    params.bidirectional = bidirectional;
    const auto circuit = tbs_synthesize( perm, params );
    EXPECT_EQ( circuit.num_lines(), lines );
    EXPECT_EQ( circuit.permutation(), perm ) << "lines=" << lines << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P( sweep, tbs_random,
                          ::testing::Combine( ::testing::Values( 2u, 3u, 4u, 5u, 6u ),
                                              ::testing::Bool() ) );

TEST( tbs, bidirectional_not_worse_on_average )
{
  // Bidirectional MMD should not produce more gates in aggregate.
  std::size_t uni_total = 0;
  std::size_t bi_total = 0;
  for ( std::uint64_t seed = 1; seed <= 10; ++seed )
  {
    const auto perm = random_permutation( 5, seed * 31u );
    tbs_params uni;
    uni.bidirectional = false;
    tbs_params bi;
    bi.bidirectional = true;
    uni_total += tbs_synthesize( perm, uni ).num_gates();
    bi_total += tbs_synthesize( perm, bi ).num_gates();
  }
  EXPECT_LE( bi_total, uni_total );
}

TEST( tbs, gates_use_positive_controls_only )
{
  const auto perm = random_permutation( 4, 99 );
  const auto circuit = tbs_synthesize( perm );
  for ( const auto& g : circuit.gates() )
  {
    for ( const auto& c : g.controls )
    {
      EXPECT_TRUE( c.positive );
      EXPECT_NE( c.line, g.target );
    }
  }
}

TEST( tbs, synthesizes_embedded_reciprocal )
{
  // End-to-end slice of the functional flow: INTDIV(3) -> optimum embedding
  // -> TBS -> exact permutation check.
  const auto mod = verilog::elaborate_verilog( verilog::generate_intdiv( 3 ) );
  const auto tts = mod.aig.simulate_outputs();
  const auto emb = embed_optimum( tts );
  const auto circuit = tbs_synthesize( emb.permutation );
  EXPECT_EQ( circuit.num_lines(), emb.num_lines );
  EXPECT_EQ( circuit.permutation(), emb.permutation );
}

TEST( tbs, involution_permutation )
{
  // A self-inverse permutation (bit reversal on 3 lines).
  std::vector<std::uint64_t> perm( 8 );
  for ( std::uint64_t i = 0; i < 8; ++i )
  {
    perm[i] = ( ( i & 1u ) << 2 ) | ( i & 2u ) | ( ( i >> 2 ) & 1u );
  }
  const auto circuit = tbs_synthesize( perm );
  EXPECT_EQ( circuit.permutation(), perm );
}
