#include <gtest/gtest.h>

#include "baseline/arith.hpp"
#include "baseline/qnewton.hpp"
#include "baseline/resdiv.hpp"
#include "reversible/cost.hpp"
#include "reversible/verify.hpp"
#include "verilog/generators.hpp"

using namespace qsyn;

namespace
{

struct adder_fixture
{
  reversible_circuit circuit;
  std::vector<std::uint32_t> a;
  std::vector<std::uint32_t> b;
  std::uint32_t cin = 0;
  std::uint32_t cout = 0;
};

adder_fixture make_registers( unsigned w, bool with_cout )
{
  adder_fixture f;
  for ( unsigned i = 0; i < w; ++i )
  {
    f.a.push_back( f.circuit.add_line( {} ) );
  }
  for ( unsigned i = 0; i < w; ++i )
  {
    f.b.push_back( f.circuit.add_line( {} ) );
  }
  f.cin = f.circuit.add_line( {} );
  if ( with_cout )
  {
    f.cout = f.circuit.add_line( {} );
  }
  return f;
}

std::uint64_t read_register( const std::vector<bool>& state, const std::vector<std::uint32_t>& reg )
{
  std::uint64_t v = 0;
  for ( std::size_t i = 0; i < reg.size(); ++i )
  {
    v |= static_cast<std::uint64_t>( state[reg[i]] ) << i;
  }
  return v;
}

void write_register( std::vector<bool>& state, const std::vector<std::uint32_t>& reg,
                     std::uint64_t value )
{
  for ( std::size_t i = 0; i < reg.size(); ++i )
  {
    state[reg[i]] = ( value >> i ) & 1u;
  }
}

} // namespace

class cuccaro_widths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P( cuccaro_widths, addition_exhaustive )
{
  const auto w = GetParam();
  auto f = make_registers( w, true );
  cuccaro_add( f.circuit, f.a, f.b, f.cin, f.cout );
  const std::uint64_t mask = ( std::uint64_t{ 1 } << w ) - 1u;
  for ( std::uint64_t av = 0; av <= mask; ++av )
  {
    for ( std::uint64_t bv = 0; bv <= mask; ++bv )
    {
      std::vector<bool> state( f.circuit.num_lines(), false );
      write_register( state, f.a, av );
      write_register( state, f.b, bv );
      f.circuit.apply( state );
      EXPECT_EQ( read_register( state, f.b ), ( av + bv ) & mask );
      EXPECT_EQ( read_register( state, f.a ), av ); // operand restored
      EXPECT_FALSE( state[f.cin] );                 // carry ancilla restored
      EXPECT_EQ( state[f.cout], ( ( av + bv ) >> w ) & 1u );
    }
  }
}

TEST_P( cuccaro_widths, subtraction_exhaustive )
{
  const auto w = GetParam();
  auto f = make_registers( w, true );
  cuccaro_subtract( f.circuit, f.a, f.b, f.cin, f.cout );
  const std::uint64_t mask = ( std::uint64_t{ 1 } << w ) - 1u;
  for ( std::uint64_t av = 0; av <= mask; ++av )
  {
    for ( std::uint64_t bv = 0; bv <= mask; ++bv )
    {
      std::vector<bool> state( f.circuit.num_lines(), false );
      write_register( state, f.a, av );
      write_register( state, f.b, bv );
      f.circuit.apply( state );
      EXPECT_EQ( read_register( state, f.b ), ( bv - av ) & mask );
      EXPECT_EQ( read_register( state, f.a ), av );
      // borrow_out fires iff a > b.
      EXPECT_EQ( state[f.cout], av > bv );
    }
  }
}

INSTANTIATE_TEST_SUITE_P( widths, cuccaro_widths, ::testing::Values( 1u, 2u, 3u, 4u, 5u ) );

TEST( cuccaro, controlled_add_both_phases )
{
  const unsigned w = 4;
  auto f = make_registers( w, false );
  const auto ctl = f.circuit.add_line( {} );
  cuccaro_add( f.circuit, f.a, f.b, f.cin, std::nullopt, control{ ctl, true } );
  const std::uint64_t mask = 15;
  for ( unsigned cv = 0; cv <= 1; ++cv )
  {
    for ( std::uint64_t av = 0; av <= mask; ++av )
    {
      for ( std::uint64_t bv = 0; bv <= mask; ++bv )
      {
        std::vector<bool> state( f.circuit.num_lines(), false );
        write_register( state, f.a, av );
        write_register( state, f.b, bv );
        state[ctl] = cv;
        f.circuit.apply( state );
        EXPECT_EQ( read_register( state, f.b ), cv ? ( ( av + bv ) & mask ) : bv );
        EXPECT_EQ( read_register( state, f.a ), av );
        EXPECT_FALSE( state[f.cin] );
      }
    }
  }
}

TEST( cuccaro, negatively_controlled_subtract )
{
  const unsigned w = 3;
  auto f = make_registers( w, false );
  const auto ctl = f.circuit.add_line( {} );
  cuccaro_subtract( f.circuit, f.a, f.b, f.cin, std::nullopt, control{ ctl, false } );
  for ( std::uint64_t av = 0; av < 8; ++av )
  {
    for ( std::uint64_t bv = 0; bv < 8; ++bv )
    {
      for ( unsigned cv = 0; cv <= 1; ++cv )
      {
        std::vector<bool> state( f.circuit.num_lines(), false );
        write_register( state, f.a, av );
        write_register( state, f.b, bv );
        state[ctl] = cv;
        f.circuit.apply( state );
        const auto expect = cv == 0u ? ( ( bv - av ) & 7u ) : bv;
        EXPECT_EQ( read_register( state, f.b ), expect );
      }
    }
  }
}

TEST( arith, add_constant_roundtrip )
{
  reversible_circuit c;
  std::vector<std::uint32_t> b;
  std::vector<std::uint32_t> scratch;
  for ( unsigned i = 0; i < 5; ++i )
  {
    b.push_back( c.add_line( {} ) );
  }
  for ( unsigned i = 0; i < 5; ++i )
  {
    scratch.push_back( c.add_line( {} ) );
  }
  const auto cin = c.add_line( {} );
  const std::vector<bool> constant = { true, false, true, true, false }; // 13
  add_constant( c, constant, b, scratch, cin );
  for ( std::uint64_t bv = 0; bv < 32; ++bv )
  {
    std::vector<bool> state( c.num_lines(), false );
    write_register( state, b, bv );
    c.apply( state );
    EXPECT_EQ( read_register( state, b ), ( bv + 13u ) & 31u );
    EXPECT_EQ( read_register( state, scratch ), 0u ); // restored
    EXPECT_FALSE( state[cin] );
  }
}

TEST( arith, subtract_constant )
{
  reversible_circuit c;
  std::vector<std::uint32_t> b;
  std::vector<std::uint32_t> scratch;
  for ( unsigned i = 0; i < 4; ++i )
  {
    b.push_back( c.add_line( {} ) );
  }
  for ( unsigned i = 0; i < 4; ++i )
  {
    scratch.push_back( c.add_line( {} ) );
  }
  const auto cin = c.add_line( {} );
  add_constant( c, { true, true, false, false }, b, scratch, cin, true ); // -3
  for ( std::uint64_t bv = 0; bv < 16; ++bv )
  {
    std::vector<bool> state( c.num_lines(), false );
    write_register( state, b, bv );
    c.apply( state );
    EXPECT_EQ( read_register( state, b ), ( bv - 3u ) & 15u );
  }
}

TEST( arith, barrel_rotate_left_shifts_with_headroom )
{
  reversible_circuit c;
  std::vector<std::uint32_t> reg;
  std::vector<std::uint32_t> amount;
  for ( unsigned i = 0; i < 8; ++i )
  {
    reg.push_back( c.add_line( {} ) );
  }
  for ( unsigned i = 0; i < 2; ++i )
  {
    amount.push_back( c.add_line( {} ) );
  }
  barrel_rotate_left( c, reg, amount );
  for ( std::uint64_t v = 0; v < 16; ++v ) // value in low 4 bits: headroom 4
  {
    for ( std::uint64_t s = 0; s < 4; ++s )
    {
      std::vector<bool> state( c.num_lines(), false );
      write_register( state, reg, v );
      write_register( state, amount, s );
      c.apply( state );
      EXPECT_EQ( read_register( state, reg ), ( v << s ) & 255u ) << "v=" << v << " s=" << s;
    }
  }
}

TEST( arith, barrel_rotate_right_inverse_of_left )
{
  reversible_circuit c;
  std::vector<std::uint32_t> reg;
  std::vector<std::uint32_t> amount;
  for ( unsigned i = 0; i < 6; ++i )
  {
    reg.push_back( c.add_line( {} ) );
  }
  for ( unsigned i = 0; i < 2; ++i )
  {
    amount.push_back( c.add_line( {} ) );
  }
  barrel_rotate_left( c, reg, amount );
  barrel_rotate_right( c, reg, amount );
  for ( std::uint64_t v = 0; v < 64; v += 7 )
  {
    for ( std::uint64_t s = 0; s < 4; ++s )
    {
      std::vector<bool> state( c.num_lines(), false );
      write_register( state, reg, v );
      write_register( state, amount, s );
      c.apply( state );
      EXPECT_EQ( read_register( state, reg ), v );
    }
  }
}

class divider_widths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P( divider_widths, quotient_and_remainder_exhaustive )
{
  const auto w = GetParam();
  auto res = build_restoring_divider( w );
  const std::uint64_t limit = std::uint64_t{ 1 } << w;
  for ( std::uint64_t av = 0; av < limit; ++av )
  {
    for ( std::uint64_t bv = 1; bv < limit; ++bv )
    {
      std::vector<bool> state( res.circuit.num_lines(), false );
      write_register( state, res.dividend_lines, av );
      write_register( state, res.divisor_lines, bv );
      res.circuit.apply( state );
      EXPECT_EQ( read_register( state, res.quotient_lines ), av / bv );
      EXPECT_EQ( read_register( state, res.remainder_lines ), av % bv );
      EXPECT_EQ( read_register( state, res.divisor_lines ), bv ); // preserved
    }
  }
}

INSTANTIATE_TEST_SUITE_P( widths, divider_widths, ::testing::Values( 2u, 3u, 4u, 5u ) );

TEST( resdiv, reciprocal_matches_reference )
{
  for ( const unsigned n : { 3u, 4u, 5u } )
  {
    auto res = build_resdiv_reciprocal( n );
    for ( std::uint64_t x = 1; x < ( std::uint64_t{ 1 } << n ); ++x )
    {
      std::vector<bool> inputs( n );
      for ( unsigned b = 0; b < n; ++b )
      {
        inputs[b] = ( x >> b ) & 1u;
      }
      const auto out = evaluate_circuit( res.circuit, inputs );
      std::uint64_t y = 0;
      for ( std::size_t b = 0; b < out.size(); ++b )
      {
        y |= static_cast<std::uint64_t>( out[b] ) << b;
      }
      EXPECT_EQ( y, verilog::reciprocal_reference( n, x ) ) << "n=" << n << " x=" << x;
    }
  }
}

TEST( resdiv, qubit_count_is_about_6n )
{
  // The paper's Table I reports 6n qubits for RESDIV(n); our construction
  // adds a constant number of helper lines.
  for ( const unsigned n : { 4u, 8u, 16u } )
  {
    const auto res = build_resdiv_reciprocal( n );
    EXPECT_GE( res.circuit.num_lines(), 6u * n );
    EXPECT_LE( res.circuit.num_lines(), 6u * n + 4u );
  }
}

TEST( resdiv, t_count_scales_quadratically )
{
  const auto t8 = circuit_t_count( build_resdiv_reciprocal( 8 ).circuit );
  const auto t16 = circuit_t_count( build_resdiv_reciprocal( 16 ).circuit );
  // Doubling n should roughly quadruple the T-count (Table I: 8512 -> 34944).
  EXPECT_GT( t16, 3u * t8 );
  EXPECT_LT( t16, 6u * t8 );
}

class qnewton_widths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P( qnewton_widths, reciprocal_within_tolerance )
{
  const auto n = GetParam();
  const auto res = build_qnewton( n );
  for ( std::uint64_t x = 2; x < ( std::uint64_t{ 1 } << n ); ++x )
  {
    std::vector<bool> inputs( n );
    for ( unsigned b = 0; b < n; ++b )
    {
      inputs[b] = ( x >> b ) & 1u;
    }
    const auto out = evaluate_circuit( res.circuit, inputs );
    std::uint64_t y = 0;
    for ( std::size_t b = 0; b < out.size(); ++b )
    {
      y |= static_cast<std::uint64_t>( out[b] ) << b;
    }
    const auto expected = verilog::reciprocal_reference( n, x );
    const auto err = y > expected ? y - expected : expected - y;
    EXPECT_LE( err, 2u ) << "n=" << n << " x=" << x << " y=" << y << " expect=" << expected;
  }
}

INSTANTIATE_TEST_SUITE_P( widths, qnewton_widths, ::testing::Values( 4u, 5u, 6u ) );

TEST( qnewton, x_equals_one_saturates )
{
  // 1/1 = 1.0 is not representable as 0.y1..yn; Newton converges to the
  // all-ones fraction (the same behaviour as the NEWTON Verilog design).
  const unsigned n = 4;
  const auto res = build_qnewton( n );
  std::vector<bool> inputs( n, false );
  inputs[0] = true;
  const auto out = evaluate_circuit( res.circuit, inputs );
  std::uint64_t y = 0;
  for ( std::size_t b = 0; b < out.size(); ++b )
  {
    y |= static_cast<std::uint64_t>( out[b] ) << b;
  }
  EXPECT_EQ( y, 15u );
}

TEST( qnewton, uses_fewer_qubits_than_double_width_divider )
{
  // QNEWTON's selling point in the paper: fewer lines than naive Newton,
  // though more than RESDIV; we check it stays within a sane envelope.
  const auto qn = build_qnewton( 8 );
  EXPECT_GE( qn.circuit.num_lines(), 8u * 8u );
  EXPECT_LE( qn.circuit.num_lines(), 8u * 24u );
}

TEST( qnewton, iteration_schedule_matches_paper )
{
  EXPECT_EQ( build_qnewton( 4 ).iterations, 1u );
  EXPECT_EQ( build_qnewton( 8 ).iterations, 2u );
}
