/// \file qsyn_client.cpp
/// \brief Thin client for the synthesis daemon (qsynd).
///
/// Usage:
///   qsyn_client --socket PATH '{"cmd":"ping"}'         # raw JSON passthrough
///   qsyn_client --socket PATH cmd=synthesize design=intdiv bitwidth=6 \
///               flow=esop esop_p=1 verify=sampled      # key=value sugar
///
/// Sends exactly one request line and prints the daemon's response line.
/// With key=value arguments, values that parse as numbers are sent as
/// JSON numbers, everything else as strings.  Synthesize requests accept
/// budget fields (deadline=SECONDS, sat_conflicts=N, sat_propagations=N,
/// exorcism_pairs=N; 0 = unlimited) — a better-budgeted repeat of a
/// degraded result makes the daemon recompute and upgrade its cache.
/// Exit status 0 when the daemon answered with "ok":true; 3 when it
/// answered "code":"busy" (backpressure — retry later); 1 otherwise.

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "store/daemon.hpp" // json_escape

namespace
{

int usage( const char* argv0 )
{
  std::fprintf( stderr,
                "usage: %s --socket PATH ('{\"cmd\":...}' | key=value [key=value ...])\n",
                argv0 );
  return 2;
}

bool is_number( const std::string& s )
{
  if ( s.empty() )
  {
    return false;
  }
  std::size_t i = s[0] == '-' ? 1 : 0;
  bool digits = false, dot = false;
  for ( ; i < s.size(); ++i )
  {
    if ( std::isdigit( static_cast<unsigned char>( s[i] ) ) )
    {
      digits = true;
    }
    else if ( s[i] == '.' && !dot )
    {
      dot = true;
    }
    else
    {
      return false;
    }
  }
  return digits;
}

std::string build_request( const std::vector<std::string>& pairs )
{
  std::string out = "{";
  for ( std::size_t i = 0; i < pairs.size(); ++i )
  {
    const auto eq = pairs[i].find( '=' );
    if ( eq == std::string::npos || eq == 0 )
    {
      throw std::runtime_error( "argument '" + pairs[i] + "' is not key=value" );
    }
    const auto key = pairs[i].substr( 0, eq );
    const auto value = pairs[i].substr( eq + 1 );
    if ( i != 0 )
    {
      out += ",";
    }
    out += "\"" + qsyn::store::json_escape( key ) + "\":";
    if ( is_number( value ) || value == "true" || value == "false" )
    {
      out += value;
    }
    else
    {
      out += "\"" + qsyn::store::json_escape( value ) + "\"";
    }
  }
  out += "}";
  return out;
}

} // namespace

int main( int argc, char** argv )
{
  std::string socket_path;
  std::vector<std::string> rest;
  for ( int i = 1; i < argc; ++i )
  {
    const std::string arg = argv[i];
    if ( arg == "--socket" && i + 1 < argc )
    {
      socket_path = argv[++i];
    }
    else
    {
      rest.push_back( arg );
    }
  }
  if ( socket_path.empty() || rest.empty() )
  {
    return usage( argv[0] );
  }

  std::string request;
  try
  {
    request = rest.size() == 1 && rest[0].front() == '{' ? rest[0] : build_request( rest );
  }
  catch ( const std::exception& e )
  {
    std::fprintf( stderr, "qsyn_client: %s\n", e.what() );
    return 2;
  }
  request += "\n";

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if ( socket_path.size() >= sizeof( addr.sun_path ) )
  {
    std::fprintf( stderr, "qsyn_client: socket path too long\n" );
    return 1;
  }
  std::strncpy( addr.sun_path, socket_path.c_str(), sizeof( addr.sun_path ) - 1 );
  const int fd = ::socket( AF_UNIX, SOCK_STREAM, 0 );
  if ( fd < 0 ||
       ::connect( fd, reinterpret_cast<const sockaddr*>( &addr ), sizeof( addr ) ) != 0 )
  {
    std::fprintf( stderr, "qsyn_client: cannot connect to '%s'\n", socket_path.c_str() );
    if ( fd >= 0 )
    {
      ::close( fd );
    }
    return 1;
  }

  std::size_t sent = 0;
  while ( sent < request.size() )
  {
    const auto n = ::send( fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL );
    if ( n < 0 && errno == EINTR )
    {
      continue;
    }
    if ( n <= 0 )
    {
      std::fprintf( stderr, "qsyn_client: send failed\n" );
      ::close( fd );
      return 1;
    }
    sent += static_cast<std::size_t>( n );
  }

  std::string response;
  char chunk[4096];
  while ( response.find( '\n' ) == std::string::npos )
  {
    const auto n = ::recv( fd, chunk, sizeof chunk, 0 );
    if ( n < 0 && errno == EINTR )
    {
      continue;
    }
    if ( n <= 0 )
    {
      break;
    }
    response.append( chunk, static_cast<std::size_t>( n ) );
  }
  ::close( fd );
  const auto eol = response.find( '\n' );
  if ( eol != std::string::npos )
  {
    response.resize( eol );
  }
  if ( response.empty() )
  {
    std::fprintf( stderr, "qsyn_client: no response\n" );
    return 1;
  }
  std::printf( "%s\n", response.c_str() );
  if ( response.find( "\"ok\":true" ) != std::string::npos )
  {
    return 0;
  }
  // Backpressure (admission or connection cap) gets its own status so
  // scripted callers can retry instead of treating it as a hard failure.
  return response.find( "\"code\":\"busy\"" ) != std::string::npos ? 3 : 1;
}
