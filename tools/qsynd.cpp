/// \file qsynd.cpp
/// \brief Synthesis daemon CLI: serve synthesis queries over a unix socket.
///
/// Usage:
///   qsynd --socket /tmp/qsyn.sock [--store .qsyn-store]
///
/// The daemon answers line-delimited JSON requests (see store/daemon.hpp
/// for the protocol) until it receives {"cmd":"shutdown"} or a SIGINT /
/// SIGTERM.  With --store, stage artifacts and full results persist
/// across daemon restarts (and are shared with bench/CLI runs pointing at
/// the same store root).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "store/daemon.hpp"

namespace
{

std::atomic<bool> interrupted{ false };

void on_signal( int )
{
  interrupted.store( true );
}

int usage( const char* argv0 )
{
  std::fprintf( stderr, "usage: %s --socket PATH [--store DIR]\n", argv0 );
  return 2;
}

} // namespace

int main( int argc, char** argv )
{
  qsyn::store::daemon_options options;
  for ( int i = 1; i < argc; ++i )
  {
    const std::string arg = argv[i];
    if ( arg == "--socket" && i + 1 < argc )
    {
      options.socket_path = argv[++i];
    }
    else if ( arg == "--store" && i + 1 < argc )
    {
      options.store_root = argv[++i];
    }
    else
    {
      return usage( argv[0] );
    }
  }
  if ( options.socket_path.empty() )
  {
    return usage( argv[0] );
  }

  try
  {
    qsyn::store::synthesis_daemon daemon( options );
    daemon.start();
    std::signal( SIGINT, on_signal );
    std::signal( SIGTERM, on_signal );
    std::printf( "qsynd: listening on %s%s%s\n", options.socket_path.c_str(),
                 options.store_root.empty() ? "" : ", store ",
                 options.store_root.c_str() );
    std::fflush( stdout );
    while ( !daemon.shutdown_requested() && !interrupted.load() )
    {
      std::this_thread::sleep_for( std::chrono::milliseconds( 50 ) );
    }
    daemon.stop();
    const auto stats = daemon.stats();
    std::printf( "qsynd: served %zu requests (%zu synthesized, %zu from cache, %zu errors)\n",
                 stats.requests, stats.synthesized, stats.result_hits, stats.errors );
    return 0;
  }
  catch ( const std::exception& e )
  {
    std::fprintf( stderr, "qsynd: %s\n", e.what() );
    return 1;
  }
}
