/// \file qsynd.cpp
/// \brief Synthesis daemon CLI: serve synthesis queries over a unix socket.
///
/// Usage:
///   qsynd --socket /tmp/qsyn.sock [--store .qsyn-store] [--threads N]
///         [--max-inflight N] [--max-connections N] [--max-line-bytes N]
///
/// The daemon answers line-delimited JSON requests (see store/daemon.hpp
/// for the protocol) until it receives {"cmd":"shutdown"} or a SIGINT /
/// SIGTERM.  With --store, stage artifacts and full results persist
/// across daemon restarts (and are shared with bench/CLI runs pointing at
/// the same store root).  Synthesis runs on one shared work-stealing pool
/// (--threads; 0 = hardware default, honoring QSYN_THREADS); identical
/// concurrent queries coalesce into one synthesis; requests beyond
/// --max-inflight and connections beyond --max-connections are rejected
/// with code "busy" instead of queuing without bound.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "store/daemon.hpp"

namespace
{

std::atomic<bool> interrupted{ false };

void on_signal( int )
{
  interrupted.store( true );
}

int usage( const char* argv0 )
{
  std::fprintf( stderr,
                "usage: %s --socket PATH [--store DIR] [--threads N] [--max-inflight N]\n"
                "          [--max-connections N] [--max-line-bytes N]\n",
                argv0 );
  return 2;
}

bool parse_size( const char* text, std::size_t& out )
{
  char* end = nullptr;
  const auto value = std::strtoull( text, &end, 10 );
  if ( end == text || *end != '\0' )
  {
    return false;
  }
  out = static_cast<std::size_t>( value );
  return true;
}

} // namespace

int main( int argc, char** argv )
{
  qsyn::store::daemon_options options;
  for ( int i = 1; i < argc; ++i )
  {
    const std::string arg = argv[i];
    std::size_t value = 0;
    if ( arg == "--socket" && i + 1 < argc )
    {
      options.socket_path = argv[++i];
    }
    else if ( arg == "--store" && i + 1 < argc )
    {
      options.store_root = argv[++i];
    }
    else if ( arg == "--threads" && i + 1 < argc && parse_size( argv[++i], value ) )
    {
      options.num_threads = static_cast<unsigned>( value );
    }
    else if ( arg == "--max-inflight" && i + 1 < argc && parse_size( argv[++i], value ) )
    {
      options.max_inflight = value;
    }
    else if ( arg == "--max-connections" && i + 1 < argc && parse_size( argv[++i], value ) &&
              value > 0u )
    {
      options.max_connections = value;
    }
    else if ( arg == "--max-line-bytes" && i + 1 < argc && parse_size( argv[++i], value ) &&
              value > 0u )
    {
      options.max_line_bytes = value;
    }
    else
    {
      return usage( argv[0] );
    }
  }
  if ( options.socket_path.empty() )
  {
    return usage( argv[0] );
  }

  try
  {
    qsyn::store::synthesis_daemon daemon( options );
    daemon.start();
    std::signal( SIGINT, on_signal );
    std::signal( SIGTERM, on_signal );
    std::printf( "qsynd: listening on %s%s%s (%u synthesis threads)\n",
                 options.socket_path.c_str(),
                 options.store_root.empty() ? "" : ", store ",
                 options.store_root.c_str(), daemon.num_threads() );
    std::fflush( stdout );
    while ( !daemon.shutdown_requested() && !interrupted.load() )
    {
      std::this_thread::sleep_for( std::chrono::milliseconds( 50 ) );
    }
    daemon.stop();
    const auto stats = daemon.stats();
    std::printf( "qsynd: served %zu requests (%zu synthesized, %zu from cache, %zu coalesced, "
                 "%zu upgraded, %zu rejected, %zu errors)\n",
                 stats.requests, stats.synthesized, stats.result_hits, stats.coalesced,
                 stats.upgraded, stats.rejected, stats.errors );
    return 0;
  }
  catch ( const std::exception& e )
  {
    std::fprintf( stderr, "qsynd: %s\n", e.what() );
    return 1;
  }
}
