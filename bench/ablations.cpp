/// \file ablations.cpp
/// \brief google-benchmark suite: ablations of the design choices the paper
/// (and DESIGN.md) call out, plus micro-benchmarks of the synthesis kernels.
///
/// Ablations:
///  * exorcism on/off       — ESOP minimization effect on cube count/T,
///  * REVS p sweep          — factoring depth vs. T-count,
///  * cleanup strategies    — garbage vs. Bennett vs. eager,
///  * TBS direction         — unidirectional vs. bidirectional gate counts,
///  * optimization rounds   — dc2 iterations vs. AIG size.

#include <benchmark/benchmark.h>

#include <numeric>
#include <random>

#include "core/flows.hpp"
#include "rsynth/tbs.hpp"
#include "synth/aig_optimize.hpp"
#include "synth/esop_extract.hpp"
#include "synth/exorcism.hpp"
#include "verilog/elaborator.hpp"
#include "verilog/generators.hpp"

using namespace qsyn;

namespace
{

aig_network intdiv_aig( unsigned n )
{
  return verilog::elaborate_verilog( verilog::generate_intdiv( n ) ).aig;
}

} // namespace

static void ablation_exorcism( benchmark::State& state )
{
  const bool enabled = state.range( 0 ) != 0;
  const auto aig = optimize( intdiv_aig( 6 ), 2 );
  std::size_t terms = 0;
  std::uint64_t t_count = 0;
  for ( auto _ : state )
  {
    flow_params params;
    params.kind = flow_kind::esop_based;
    params.run_exorcism = enabled;
    params.verify = false;
    const auto r = run_flow_on_aig( aig, params );
    terms = r.esop_terms;
    t_count = r.costs.t_count;
  }
  state.counters["esop_terms"] = static_cast<double>( terms );
  state.counters["t_count"] = static_cast<double>( t_count );
}
BENCHMARK( ablation_exorcism )->Arg( 0 )->Arg( 1 )->Unit( benchmark::kMillisecond );

static void ablation_revs_p( benchmark::State& state )
{
  const auto p = static_cast<unsigned>( state.range( 0 ) );
  const auto aig = optimize( intdiv_aig( 7 ), 2 );
  std::uint64_t t_count = 0;
  unsigned qubits = 0;
  for ( auto _ : state )
  {
    flow_params params;
    params.kind = flow_kind::esop_based;
    params.esop_p = p;
    params.verify = false;
    const auto r = run_flow_on_aig( aig, params );
    t_count = r.costs.t_count;
    qubits = r.costs.qubits;
  }
  state.counters["t_count"] = static_cast<double>( t_count );
  state.counters["qubits"] = static_cast<double>( qubits );
}
BENCHMARK( ablation_revs_p )->DenseRange( 0, 3 )->Unit( benchmark::kMillisecond );

static void ablation_cleanup_strategy( benchmark::State& state )
{
  const auto cleanup = static_cast<cleanup_strategy>( state.range( 0 ) );
  const auto aig = optimize( intdiv_aig( 8 ), 2 );
  std::uint64_t t_count = 0;
  unsigned qubits = 0;
  for ( auto _ : state )
  {
    flow_params params;
    params.kind = flow_kind::hierarchical;
    params.cleanup = cleanup;
    params.verify = false;
    const auto r = run_flow_on_aig( aig, params );
    t_count = r.costs.t_count;
    qubits = r.costs.qubits;
  }
  state.counters["t_count"] = static_cast<double>( t_count );
  state.counters["qubits"] = static_cast<double>( qubits );
}
BENCHMARK( ablation_cleanup_strategy )->DenseRange( 0, 2 )->Unit( benchmark::kMillisecond );

static void ablation_tbs_direction( benchmark::State& state )
{
  const bool bidirectional = state.range( 0 ) != 0;
  std::mt19937_64 rng( 12345 );
  std::vector<std::uint64_t> perm( 1u << 10 );
  std::iota( perm.begin(), perm.end(), 0u );
  std::shuffle( perm.begin(), perm.end(), rng );
  std::size_t gates = 0;
  for ( auto _ : state )
  {
    tbs_params params;
    params.bidirectional = bidirectional;
    const auto c = tbs_synthesize( perm, params );
    gates = c.num_gates();
    benchmark::DoNotOptimize( c );
  }
  state.counters["gates"] = static_cast<double>( gates );
}
BENCHMARK( ablation_tbs_direction )->Arg( 0 )->Arg( 1 )->Unit( benchmark::kMillisecond );

static void ablation_optimization_rounds( benchmark::State& state )
{
  const auto rounds = static_cast<unsigned>( state.range( 0 ) );
  const auto aig = intdiv_aig( 8 );
  std::size_t nodes = 0;
  for ( auto _ : state )
  {
    const auto optimized = optimize( aig, rounds );
    nodes = optimized.num_ands();
  }
  state.counters["aig_nodes"] = static_cast<double>( nodes );
}
BENCHMARK( ablation_optimization_rounds )->DenseRange( 0, 3 )->Unit( benchmark::kMillisecond );

/// --- micro benchmarks of the kernels -------------------------------------

static void micro_aig_simulation( benchmark::State& state )
{
  const auto aig = intdiv_aig( static_cast<unsigned>( state.range( 0 ) ) );
  for ( auto _ : state )
  {
    benchmark::DoNotOptimize( aig.simulate_outputs() );
  }
}
BENCHMARK( micro_aig_simulation )->Arg( 6 )->Arg( 8 )->Arg( 10 );

static void micro_esop_extraction( benchmark::State& state )
{
  const auto aig = optimize( intdiv_aig( static_cast<unsigned>( state.range( 0 ) ) ), 1 );
  for ( auto _ : state )
  {
    benchmark::DoNotOptimize( esop_from_aig( aig ) );
  }
}
BENCHMARK( micro_esop_extraction )->Arg( 6 )->Arg( 8 );

static void micro_tbs_random_permutation( benchmark::State& state )
{
  std::mt19937_64 rng( 99 );
  std::vector<std::uint64_t> perm( std::uint64_t{ 1 } << state.range( 0 ) );
  std::iota( perm.begin(), perm.end(), 0u );
  std::shuffle( perm.begin(), perm.end(), rng );
  for ( auto _ : state )
  {
    benchmark::DoNotOptimize( tbs_synthesize( perm ) );
  }
}
BENCHMARK( micro_tbs_random_permutation )->Arg( 8 )->Arg( 10 )->Arg( 12 );

static void micro_verilog_elaboration( benchmark::State& state )
{
  const auto source = verilog::generate_newton( static_cast<unsigned>( state.range( 0 ) ) );
  for ( auto _ : state )
  {
    benchmark::DoNotOptimize( verilog::elaborate_verilog( source ) );
  }
}
BENCHMARK( micro_verilog_elaboration )->Arg( 8 )->Arg( 16 )->Unit( benchmark::kMillisecond );

BENCHMARK_MAIN();
