/// \file table4_hierarchical.cpp
/// \brief Reproduces Table IV: hierarchical synthesis via XMGs.
///
/// Flow: Verilog -> AIG -> dc2 -> 4-LUT mapping -> xmglut-style XMG
/// resynthesis -> hierarchical REVS synthesis (one Toffoli per MAJ, XOR
/// free, garbage kept — the configuration of the paper's Table IV).
///
/// Paper reference (INTDIV): n=16: 892 qb/5 607 T, n=32: 3 501/21 455,
/// n=64: 13 465/80 339, n=128: 51 897/308 364.  NEWTON pays roughly an
/// order of magnitude more on both axes (the flow cannot exploit the
/// Newton structure without collapsing it) — reproducing that gap is the
/// key qualitative target.
///
/// Default sweep: INTDIV n in {8,16,32,64}, NEWTON n in {8,16,32};
/// --max-n 128 extends both (NEWTON(64/128) needs minutes and gigabytes).

#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "core/flows.hpp"

int main( int argc, char** argv )
{
  using namespace qsyn;
  unsigned max_n = 64;
  unsigned max_newton = 64;
  for ( int i = 1; i < argc; ++i )
  {
    if ( std::strcmp( argv[i], "--max-n" ) == 0 && i + 1 < argc )
    {
      max_n = static_cast<unsigned>( std::atoi( argv[++i] ) );
      max_newton = max_n;
    }
  }

  std::printf( "TABLE IV: RESULTS WITH HIERARCHICAL SYNTHESIS\n" );
  std::printf( "%4s | %31s | %31s\n", "", "INTDIV(n)", "NEWTON(n)" );
  std::printf( "%4s | %9s %13s %7s | %9s %13s %7s\n", "n", "qubits", "T-count", "time",
               "qubits", "T-count", "time" );
  std::printf( "-----+---------------------------------+---------------------------------\n" );
  for ( const unsigned n : { 8u, 16u, 32u, 64u, 128u } )
  {
    if ( n > max_n )
    {
      break;
    }
    flow_params params;
    params.kind = flow_kind::hierarchical;
    params.cleanup = cleanup_strategy::keep_garbage;
    params.verify = n <= 16; // sampled simulation against the AIG
    const auto rd = run_reciprocal_flow( reciprocal_design::intdiv, n, params );
    std::printf( "%4u | %9u %13llu %6.1fs |", n, rd.costs.qubits,
                 static_cast<unsigned long long>( rd.costs.t_count ), rd.runtime_seconds );
    if ( n <= max_newton )
    {
      const auto rn = run_reciprocal_flow( reciprocal_design::newton, n, params );
      std::printf( " %9u %13llu %6.1fs\n", rn.costs.qubits,
                   static_cast<unsigned long long>( rn.costs.t_count ), rn.runtime_seconds );
    }
    else
    {
      std::printf( " %9s %13s %7s\n", "-", "-", "-" );
    }
  }
  std::printf( "\npaper (INTDIV): n=16: 892 qb/5607 T, n=32: 3501/21455, n=64: 13465/80339\n" );
  std::printf( "paper (NEWTON): n=16: 10713 qb/73080 T, n=32: 56207/392917\n" );
  return 0;
}
