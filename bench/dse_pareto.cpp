/// \file dse_pareto.cpp
/// \brief The design-space-exploration claim of the paper (Sec. I / V):
/// "we show that we can explore tradeoffs between the number of lines and
/// the depth of the circuit that cannot be probed using the handcrafted
/// approaches" — one design, many flow configurations, Pareto frontier in
/// the (qubits, T-count) plane, with the handcrafted baselines printed for
/// comparison.  A thin wrapper around the batch exploration engine
/// (`explore_designs`): artifact caching and the thread pool come for free.
///
/// Usage: dse_pareto [--n N] [--threads N] [--verify none|sampled|exhaustive|sat]
///
/// `--verify` picks the verification tier of the sweep (default: sampled,
/// the 64-way bit-parallel simulator; `sat` closes every point with a
/// proof via the miter engine in src/sat/).

#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "baseline/qnewton.hpp"
#include "baseline/resdiv.hpp"
#include "core/dse.hpp"

int main( int argc, char** argv )
{
  using namespace qsyn;
  unsigned n = 6;
  explore_options options;
  for ( int i = 1; i < argc; ++i )
  {
    if ( std::strcmp( argv[i], "--n" ) == 0 && i + 1 < argc )
    {
      n = static_cast<unsigned>( std::atoi( argv[++i] ) );
    }
    else if ( std::strcmp( argv[i], "--threads" ) == 0 && i + 1 < argc )
    {
      options.num_threads = static_cast<unsigned>( std::atoi( argv[++i] ) );
    }
    else if ( std::strcmp( argv[i], "--verify" ) == 0 && i + 1 < argc )
    {
      const auto parsed = verify_mode_from_name( argv[++i] );
      if ( !parsed )
      {
        std::fprintf( stderr, "unknown --verify '%s' (none|sampled|exhaustive|sat)\n",
                      argv[i] );
        return 1;
      }
      options.verification = *parsed;
    }
  }

  std::printf( "DESIGN SPACE EXPLORATION: reciprocal 1/x, n = %u (verify: %s)\n\n", n,
               verify_mode_name( options.verification ).c_str() );
  const auto explorations = explore_designs(
      { reciprocal_design::intdiv, reciprocal_design::newton }, n, n, options );
  for ( const auto& e : explorations )
  {
    std::printf( "--- %s ---\n", e.name.c_str() );
    std::printf( "%s", format_dse_table( e.points ).c_str() );
    std::printf( "(%.2f s sweep, %zu cache hits / %zu misses)\n\n", e.wall_seconds,
                 e.cache.hits, e.cache.misses );
  }

  std::printf( "--- handcrafted baselines for comparison ---\n" );
  const auto rd = report_costs( build_resdiv_reciprocal( n ).circuit );
  const auto qn = report_costs( build_qnewton( n ).circuit );
  std::printf( "%-24s %8u %14llu\n", "RESDIV (manual)", rd.qubits,
               static_cast<unsigned long long>( rd.t_count ) );
  std::printf( "%-24s %8u %14llu\n", "QNEWTON (manual)", qn.qubits,
               static_cast<unsigned long long>( qn.t_count ) );
  std::printf( "\nThe automated flows dominate the baselines on one axis each:\n"
               "functional beats every design on qubits, hierarchical/ESOP beat\n"
               "RESDIV on T-count — the paper's central DSE claim.\n" );
  return 0;
}
