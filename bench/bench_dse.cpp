/// \file bench_dse.cpp
/// \brief Benchmark of the design-space-exploration engine: the sequential
/// seed path (one full pipeline per configuration, no artifact sharing)
/// against the cached + threaded engine, on the default reciprocal-design
/// sweep.
///
/// For every (design, bitwidth) case both paths run the identical
/// configuration list; the benchmark asserts that labels, qubit counts,
/// T-counts and gate counts agree point-by-point (the engine must change
/// the wall clock only), and writes BENCH_dse.json with both wall clocks,
/// the speedup, and the cache hit/miss counters so every future PR can
/// extend the perf trajectory.
///
/// Usage: bench_dse [--out FILE] [--quick] [--max N] [--threads N] [--no-verify]
///                  [--verify-mode sampled|exhaustive|sat]
///                  [--deadline-ms N] [--sat-conflict-budget N]
///
/// `--deadline-ms` arms a per-configuration wall-clock deadline and
/// `--sat-conflict-budget` caps the SAT verifier's conflicts; both default
/// to 0 (unlimited), which keeps the committed baseline bit-identical.
/// They exist for robustness experiments — a budgeted run reports
/// non-`ok` point statuses instead of hanging, and its cost numbers are
/// not comparable against the baseline gates.
///
/// Verification runs through the tiered engine (`verify_mode`): 64-way
/// bit-parallel sampled simulation by default, exhaustive enumeration or a
/// SAT miter on request; per-case verification seconds are reported
/// separately from the synthesis wall clocks.  (The default sweep used to
/// stop at n = 7 because scalar per-point simulation dominated from n = 8
/// on; the block engine removed that cliff, and the sweep ceiling is kept
/// only for wall-clock continuity of the committed baseline.)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/dse.hpp"
#include "verilog/elaborator.hpp"

namespace
{

using namespace qsyn;

struct case_result
{
  std::string name;
  unsigned bitwidth = 0;
  std::size_t num_configs = 0;
  double seq_wall_s = 0.0;
  double cached_wall_s = 0.0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  double verify_s = 0.0; ///< cached-path verification seconds, summed
  bool identical = true;
  bool all_verified = true;
  std::size_t non_ok_points = 0; ///< degraded/timed_out/failed points (both paths)
};

bool points_identical( const std::vector<dse_point>& a, const std::vector<dse_point>& b )
{
  if ( a.size() != b.size() )
  {
    return false;
  }
  for ( std::size_t i = 0; i < a.size(); ++i )
  {
    if ( a[i].label != b[i].label || a[i].result.costs.qubits != b[i].result.costs.qubits ||
         a[i].result.costs.t_count != b[i].result.costs.t_count ||
         a[i].result.costs.gates != b[i].result.costs.gates )
    {
      return false;
    }
  }
  return true;
}

case_result run_case( reciprocal_design design, unsigned n, bool include_functional,
                      bool verify, verify_mode mode, unsigned num_threads,
                      const budget& limits )
{
  case_result r;
  r.name = ( design == reciprocal_design::intdiv ? "intdiv-n" : "newton-n" ) + std::to_string( n );
  r.bitwidth = n;

  const auto mod = verilog::elaborate_verilog( reciprocal_verilog( design, n ) );
  auto configs = default_dse_configurations( include_functional );
  for ( auto& c : configs )
  {
    c.verify = verify;
    c.verification = mode;
    c.limits = limits;
  }
  r.num_configs = configs.size();

  // Sequential seed path: no artifact sharing, one full pipeline per
  // configuration, inline execution.
  explore_options seq;
  seq.num_threads = 1;
  seq.use_cache = false;
  stopwatch watch;
  const auto seq_points = explore( mod.aig, configs, seq );
  r.seq_wall_s = watch.elapsed_seconds();

  // Cached + threaded engine.
  explore_options par;
  par.num_threads = num_threads;
  flow_artifact_cache cache;
  watch.restart();
  const auto cached_points = explore( mod.aig, configs, par, cache );
  r.cached_wall_s = watch.elapsed_seconds();
  r.cache_hits = cache.stats().hits;
  r.cache_misses = cache.stats().misses;

  r.identical = points_identical( seq_points, cached_points );
  for ( const auto* pts : { &seq_points, &cached_points } )
  {
    for ( const auto& p : *pts )
    {
      if ( p.result.status != flow_status::ok )
      {
        ++r.non_ok_points;
        std::printf( "  %-24s %s: %s\n", p.label.c_str(),
                     flow_status_name( p.result.status ).c_str(),
                     p.result.status_detail.c_str() );
      }
    }
  }
  if ( verify )
  {
    for ( const auto& p : cached_points )
    {
      r.all_verified = r.all_verified && p.result.verified;
      r.verify_s += p.result.verify_seconds;
    }
    for ( const auto& p : seq_points )
    {
      r.all_verified = r.all_verified && p.result.verified;
    }
  }

  std::printf( "%-12s %zu configs | seq %8.3f s | cached %8.3f s (%.2fx) | verify %6.3f s | %zu hits %zu misses | %s%s\n",
               r.name.c_str(), r.num_configs, r.seq_wall_s, r.cached_wall_s,
               r.seq_wall_s / ( r.cached_wall_s > 0 ? r.cached_wall_s : 1e-9 ), r.verify_s,
               r.cache_hits, r.cache_misses, r.identical ? "identical" : "COSTS DIVERGED",
               verify ? ( r.all_verified ? ", verified" : ", VERIFY FAILED" ) : "" );
  return r;
}

void write_json( const char* path, const std::vector<case_result>& cases, bool verify,
                 verify_mode mode, unsigned num_threads )
{
  double total_seq = 0.0;
  double total_cached = 0.0;
  double total_verify = 0.0;
  bool all_identical = true;
  bool all_verified = true;
  for ( const auto& c : cases )
  {
    total_seq += c.seq_wall_s;
    total_cached += c.cached_wall_s;
    total_verify += c.verify_s;
    all_identical = all_identical && c.identical;
    all_verified = all_verified && c.all_verified;
  }

  FILE* f = std::fopen( path, "w" );
  if ( !f )
  {
    std::fprintf( stderr, "cannot open %s for writing\n", path );
    std::exit( 1 );
  }
  std::fprintf( f, "{\n  \"bench\": \"dse\",\n  \"schema_version\": 2,\n" );
  std::fprintf( f, "  \"verify\": %s,\n", verify ? "true" : "false" );
  std::fprintf( f, "  \"verify_mode\": \"%s\",\n",
                verify_mode_name( mode ).c_str() );
  std::fprintf( f, "  \"total_verify_s\": %.4f,\n", total_verify );
  std::fprintf( f, "  \"num_threads\": %u,\n", num_threads );
  std::fprintf( f, "  \"total_seq_wall_s\": %.3f,\n", total_seq );
  std::fprintf( f, "  \"total_cached_wall_s\": %.3f,\n", total_cached );
  std::fprintf( f, "  \"speedup\": %.2f,\n",
                total_seq / ( total_cached > 0 ? total_cached : 1e-9 ) );
  std::fprintf( f, "  \"all_identical\": %s,\n", all_identical ? "true" : "false" );
  std::fprintf( f, "  \"all_verified\": %s,\n", all_verified ? "true" : "false" );
  std::fprintf( f, "  \"cases\": [\n" );
  for ( std::size_t i = 0; i < cases.size(); ++i )
  {
    const auto& c = cases[i];
    std::fprintf( f, "    {\n" );
    std::fprintf( f, "      \"name\": \"%s\",\n", c.name.c_str() );
    std::fprintf( f, "      \"bitwidth\": %u,\n", c.bitwidth );
    std::fprintf( f, "      \"num_configs\": %zu,\n", c.num_configs );
    std::fprintf( f, "      \"seq_wall_s\": %.4f,\n", c.seq_wall_s );
    std::fprintf( f, "      \"cached_wall_s\": %.4f,\n", c.cached_wall_s );
    std::fprintf( f, "      \"speedup\": %.2f,\n",
                  c.seq_wall_s / ( c.cached_wall_s > 0 ? c.cached_wall_s : 1e-9 ) );
    std::fprintf( f, "      \"verify_s\": %.4f,\n", c.verify_s );
    std::fprintf( f, "      \"cache_hits\": %zu,\n", c.cache_hits );
    std::fprintf( f, "      \"cache_misses\": %zu,\n", c.cache_misses );
    std::fprintf( f, "      \"identical\": %s\n", c.identical ? "true" : "false" );
    std::fprintf( f, "    }%s\n", i + 1 < cases.size() ? "," : "" );
  }
  std::fprintf( f, "  ]\n}\n" );
  std::fclose( f );
}

} // namespace

int main( int argc, char** argv )
{
  const char* out_path = "BENCH_dse.json";
  bool quick = false;
  bool verify = true;
  verify_mode mode = verify_mode::sampled;
  unsigned num_threads = 0; // hardware concurrency
  unsigned max_n = 7;
  budget limits;
  for ( int i = 1; i < argc; ++i )
  {
    if ( std::strcmp( argv[i], "--out" ) == 0 && i + 1 < argc )
    {
      out_path = argv[++i];
    }
    else if ( std::strcmp( argv[i], "--quick" ) == 0 )
    {
      quick = true;
    }
    else if ( std::strcmp( argv[i], "--no-verify" ) == 0 )
    {
      verify = false;
    }
    else if ( std::strcmp( argv[i], "--verify-mode" ) == 0 && i + 1 < argc )
    {
      const auto parsed = verify_mode_from_name( argv[++i] );
      if ( !parsed )
      {
        std::fprintf( stderr, "unknown --verify-mode '%s' (none|sampled|exhaustive|sat)\n",
                      argv[i] );
        return 1;
      }
      mode = *parsed;
      verify = mode != verify_mode::none;
    }
    else if ( std::strcmp( argv[i], "--max" ) == 0 && i + 1 < argc )
    {
      max_n = static_cast<unsigned>( std::atoi( argv[++i] ) );
    }
    else if ( std::strcmp( argv[i], "--threads" ) == 0 && i + 1 < argc )
    {
      num_threads = static_cast<unsigned>( std::atoi( argv[++i] ) );
    }
    else if ( std::strcmp( argv[i], "--deadline-ms" ) == 0 && i + 1 < argc )
    {
      limits.deadline_seconds = std::atof( argv[++i] ) / 1000.0;
    }
    else if ( std::strcmp( argv[i], "--sat-conflict-budget" ) == 0 && i + 1 < argc )
    {
      limits.sat_conflict_budget = static_cast<std::uint64_t>( std::atoll( argv[++i] ) );
    }
  }

  if ( quick )
  {
    max_n = std::min( max_n, 6u );
  }
  // The functional flow's TBS tail is a single configuration (nothing to
  // share) and grows ~4x per bit; past n = 6 it would swamp the wall clock
  // of both paths without exercising the engine.
  const unsigned functional_max_n = 6u;

  std::vector<case_result> cases;
  for ( unsigned n = 5u; n <= max_n; ++n )
  {
    for ( const auto design : { reciprocal_design::intdiv, reciprocal_design::newton } )
    {
      cases.push_back(
          run_case( design, n, n <= functional_max_n, verify, mode, num_threads, limits ) );
    }
  }

  write_json( out_path, cases, verify, mode, num_threads );
  std::printf( "\nwrote %s\n", out_path );

  bool ok = true;
  for ( const auto& c : cases )
  {
    ok = ok && c.identical && c.all_verified;
  }
  return ok ? 0 : 1;
}
