/// \file bench_dse.cpp
/// \brief Benchmark of the design-space-exploration engine: the sequential
/// seed path (one full pipeline per configuration, no artifact sharing)
/// against the cached + threaded engine, on the default reciprocal-design
/// sweep.
///
/// For every (design, bitwidth) case both paths run the identical
/// configuration list; the benchmark asserts that labels, qubit counts,
/// T-counts and gate counts agree point-by-point (the engine must change
/// the wall clock only), and writes BENCH_dse.json with both wall clocks,
/// the speedup, and the cache hit/miss counters so every future PR can
/// extend the perf trajectory.
///
/// Schema v3 additionally reports the task-graph scheduler: per case the
/// tasks run, steals, coalesced artifact requests, and the critical path
/// of the dependency DAG (the wall clock an ideal scheduler would need),
/// and a multi-design sweep section comparing the serial one-design-at-a-
/// time batch driver (`schedule_mode::tail_only`) against the whole-batch
/// task graph on a work-stealing pool (`--sweep-threads` workers, default
/// max(4, hardware)) — bit-identical costs required, wall clocks and
/// scheduler counters reported.
///
/// Schema v4 adds the persistent-store sections.  `store_sweep` runs the
/// batch sweep twice against one on-disk artifact store root — cold
/// (empty store) then warm (fresh caches, same root, simulating a new
/// process) — and requires the warm pass to recompute no stage artifact
/// at all (misses == 0, store hits == the cold pass's misses) with
/// bit-identical costs.  `daemon` synthesizes one query through a
/// `synthesis_daemon`, repeats it, and reports the repeat-from-cache
/// latency ratio plus whether a second daemon instance on the same store
/// root answers the query from disk without synthesizing.
///
/// Schema v5 extends the `daemon` section with a concurrent-clients case:
/// N identical queries fired at a fresh daemon (empty caches) must
/// coalesce into exactly one synthesis and every client must receive the
/// same payload (`coalesced_ok`), now that requests run on the daemon's
/// shared task-graph pool instead of their connection threads.
///
/// Usage: bench_dse [--out FILE] [--quick] [--max N] [--threads N]
///                  [--sweep-threads N] [--no-verify]
///                  [--verify-mode sampled|exhaustive|sat]
///                  [--deadline-ms N] [--sat-conflict-budget N]
///
/// `--deadline-ms` arms a per-configuration wall-clock deadline and
/// `--sat-conflict-budget` caps the SAT verifier's conflicts; both default
/// to 0 (unlimited), which keeps the committed baseline bit-identical.
/// They exist for robustness experiments — a budgeted run reports
/// non-`ok` point statuses instead of hanging, and its cost numbers are
/// not comparable against the baseline gates.
///
/// Verification runs through the tiered engine (`verify_mode`): 64-way
/// bit-parallel sampled simulation by default, exhaustive enumeration or a
/// SAT miter on request; per-case verification seconds are reported
/// separately from the synthesis wall clocks.  (The default sweep used to
/// stop at n = 7 because scalar per-point simulation dominated from n = 8
/// on; the block engine removed that cliff, and the sweep ceiling is kept
/// only for wall-clock continuity of the committed baseline.)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/dse.hpp"
#include "store/artifact_store.hpp"
#include "store/daemon.hpp"
#include "verilog/elaborator.hpp"

namespace
{

using namespace qsyn;

struct case_result
{
  std::string name;
  unsigned bitwidth = 0;
  std::size_t num_configs = 0;
  double seq_wall_s = 0.0;
  double cached_wall_s = 0.0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  double verify_s = 0.0; ///< cached-path verification seconds, summed
  bool identical = true;
  bool all_verified = true;
  std::size_t non_ok_points = 0; ///< degraded/timed_out/failed points (both paths)
  task_graph_stats sched;        ///< cached-path (task-graph engine) scheduler stats
};

bool points_identical( const std::vector<dse_point>& a, const std::vector<dse_point>& b )
{
  if ( a.size() != b.size() )
  {
    return false;
  }
  for ( std::size_t i = 0; i < a.size(); ++i )
  {
    if ( a[i].label != b[i].label || a[i].result.costs.qubits != b[i].result.costs.qubits ||
         a[i].result.costs.t_count != b[i].result.costs.t_count ||
         a[i].result.costs.gates != b[i].result.costs.gates )
    {
      return false;
    }
  }
  return true;
}

case_result run_case( reciprocal_design design, unsigned n, bool include_functional,
                      bool verify, verify_mode mode, unsigned num_threads,
                      const budget& limits )
{
  case_result r;
  r.name = ( design == reciprocal_design::intdiv ? "intdiv-n" : "newton-n" ) + std::to_string( n );
  r.bitwidth = n;

  const auto mod = verilog::elaborate_verilog( reciprocal_verilog( design, n ) );
  auto configs = default_dse_configurations( include_functional );
  for ( auto& c : configs )
  {
    c.verify = verify;
    c.verification = mode;
    c.limits = limits;
  }
  r.num_configs = configs.size();

  // Sequential seed path: no artifact sharing, one full pipeline per
  // configuration, inline execution, the pre-graph engine.
  explore_options seq;
  seq.scheduler = schedule_mode::tail_only;
  seq.num_threads = 1;
  seq.use_cache = false;
  stopwatch watch;
  const auto seq_points = explore( mod.aig, configs, seq );
  r.seq_wall_s = watch.elapsed_seconds();

  // Cached task-graph engine: coalesced stage-artifact tasks feeding the
  // per-configuration tails on the work-stealing pool.
  explore_options par;
  par.num_threads = num_threads;
  flow_artifact_cache cache;
  watch.restart();
  const auto cached_points = explore( mod.aig, configs, par, cache, deadline{}, r.sched );
  r.cached_wall_s = watch.elapsed_seconds();
  r.cache_hits = cache.stats().hits;
  r.cache_misses = cache.stats().misses;

  r.identical = points_identical( seq_points, cached_points );
  for ( const auto* pts : { &seq_points, &cached_points } )
  {
    for ( const auto& p : *pts )
    {
      if ( p.result.status != flow_status::ok )
      {
        ++r.non_ok_points;
        std::printf( "  %-24s %s: %s\n", p.label.c_str(),
                     flow_status_name( p.result.status ).c_str(),
                     p.result.status_detail.c_str() );
      }
    }
  }
  if ( verify )
  {
    for ( const auto& p : cached_points )
    {
      r.all_verified = r.all_verified && p.result.verified;
      r.verify_s += p.result.verify_seconds;
    }
    for ( const auto& p : seq_points )
    {
      r.all_verified = r.all_verified && p.result.verified;
    }
  }

  std::printf( "%-12s %zu configs | seq %8.3f s | cached %8.3f s (%.2fx) | verify %6.3f s | %zu hits %zu misses | %s%s\n",
               r.name.c_str(), r.num_configs, r.seq_wall_s, r.cached_wall_s,
               r.seq_wall_s / ( r.cached_wall_s > 0 ? r.cached_wall_s : 1e-9 ), r.verify_s,
               r.cache_hits, r.cache_misses, r.identical ? "identical" : "COSTS DIVERGED",
               verify ? ( r.all_verified ? ", verified" : ", VERIFY FAILED" ) : "" );
  std::printf( "             scheduler: %zu tasks, %zu coalesced, %llu steals, critical path %6.3f s vs wall %6.3f s\n",
               r.sched.tasks_run, r.sched.coalesced,
               static_cast<unsigned long long>( r.sched.steals ),
               r.sched.critical_path_seconds, r.sched.wall_seconds );
  return r;
}

/// The multi-design sweep comparison: the serial one-design-at-a-time batch
/// driver against the whole-batch task graph, same configurations, same
/// worker count, bit-identical costs required.
struct sweep_result
{
  unsigned min_n = 0;
  unsigned max_n = 0;
  unsigned threads = 0;
  double tail_only_wall_s = 0.0;
  double task_graph_wall_s = 0.0;
  bool identical = true;
  bool all_ok = true;
  task_graph_stats sched;
};

bool sweeps_identical( const std::vector<design_exploration>& a,
                       const std::vector<design_exploration>& b )
{
  if ( a.size() != b.size() )
  {
    return false;
  }
  for ( std::size_t d = 0; d < a.size(); ++d )
  {
    if ( a[d].name != b[d].name || a[d].status != b[d].status ||
         !points_identical( a[d].points, b[d].points ) )
    {
      return false;
    }
  }
  return true;
}

sweep_result run_sweep( unsigned min_n, unsigned max_n, unsigned threads, bool verify,
                        verify_mode mode, const budget& limits )
{
  sweep_result r;
  r.min_n = min_n;
  r.max_n = max_n;
  r.threads = threads;

  explore_options common;
  common.num_threads = threads;
  common.functional_max_bitwidth = 6; // same ceiling as the per-case sweep
  common.verification = verify ? mode : verify_mode::none;
  common.limits = limits;
  const std::vector<reciprocal_design> designs = { reciprocal_design::intdiv,
                                                   reciprocal_design::newton };

  auto serial_options = common;
  serial_options.scheduler = schedule_mode::tail_only;
  stopwatch watch;
  const auto serial = explore_designs( designs, min_n, max_n, serial_options );
  r.tail_only_wall_s = watch.elapsed_seconds();

  auto graph_options = common;
  graph_options.scheduler = schedule_mode::task_graph;
  watch.restart();
  const auto graphed = explore_designs( designs, min_n, max_n, graph_options, r.sched );
  r.task_graph_wall_s = watch.elapsed_seconds();

  r.identical = sweeps_identical( serial, graphed );
  for ( const auto& entry : graphed )
  {
    r.all_ok = r.all_ok && entry.status == flow_status::ok;
  }

  std::printf( "\nsweep n=%u..%u on %u threads | tail-only %8.3f s | task-graph %8.3f s (%.2fx) | %s\n",
               min_n, max_n, threads, r.tail_only_wall_s, r.task_graph_wall_s,
               r.tail_only_wall_s / ( r.task_graph_wall_s > 0 ? r.task_graph_wall_s : 1e-9 ),
               r.identical ? "identical" : "COSTS DIVERGED" );
  std::printf( "  scheduler: %zu tasks, %zu coalesced, %llu steals, peak concurrency %zu, critical path %6.3f s vs wall %6.3f s\n",
               r.sched.tasks_run, r.sched.coalesced,
               static_cast<unsigned long long>( r.sched.steals ),
               r.sched.max_concurrency,
               r.sched.critical_path_seconds, r.sched.wall_seconds );
  return r;
}

/// The persistent-store sweep: cold pass against an empty store root, then
/// a warm pass with fresh per-design caches on the same root — the
/// "restarted process" — which must recompute no stage artifact at all.
struct store_sweep_result
{
  unsigned min_n = 0;
  unsigned max_n = 0;
  double cold_wall_s = 0.0;
  double warm_wall_s = 0.0;
  std::size_t cold_misses = 0;
  std::size_t warm_misses = 0;
  std::size_t warm_store_hits = 0;
  bool identical = true;
  bool recompute_free = false; ///< warm misses == 0 && store hits == cold misses
};

store_sweep_result run_store_sweep( unsigned min_n, unsigned max_n, bool verify,
                                    verify_mode mode, const budget& limits )
{
  store_sweep_result r;
  r.min_n = min_n;
  r.max_n = max_n;

  char root_template[] = "/tmp/qsyn-bench-store-XXXXXX";
  const std::string root = ::mkdtemp( root_template );

  explore_options options;
  options.verification = verify ? mode : verify_mode::none;
  options.limits = limits;
  // Functional collapse artifacts are memory-only by design (exponential
  // truth tables, cheap to rebuild); exclude that flow so "recompute-free"
  // is a meaningful all-or-nothing gate on the disk tier.
  options.functional_max_bitwidth = 0;
  const std::vector<reciprocal_design> designs = { reciprocal_design::intdiv,
                                                   reciprocal_design::newton };

  const auto aggregate = []( const std::vector<design_exploration>& sweep ) {
    cache_stats total;
    for ( const auto& entry : sweep )
    {
      total.hits += entry.cache.hits;
      total.misses += entry.cache.misses;
      total.store_hits += entry.cache.store_hits;
    }
    return total;
  };

  options.store = std::make_shared<store::artifact_store>( root );
  stopwatch watch;
  const auto cold = explore_designs( designs, min_n, max_n, options );
  r.cold_wall_s = watch.elapsed_seconds();
  r.cold_misses = aggregate( cold ).misses;

  // Fresh store handle on the same root: nothing survives but the disk.
  options.store = std::make_shared<store::artifact_store>( root );
  watch.restart();
  const auto warm = explore_designs( designs, min_n, max_n, options );
  r.warm_wall_s = watch.elapsed_seconds();
  const auto warm_stats = aggregate( warm );
  r.warm_misses = warm_stats.misses;
  r.warm_store_hits = warm_stats.store_hits;

  r.identical = sweeps_identical( cold, warm );
  r.recompute_free = r.warm_misses == 0 && r.warm_store_hits == r.cold_misses;

  std::error_code ec;
  std::filesystem::remove_all( root, ec );

  std::printf( "\nstore sweep n=%u..%u | cold %8.3f s (%zu misses) | warm %8.3f s "
               "(%zu misses, %zu store hits) | %s, %s\n",
               min_n, max_n, r.cold_wall_s, r.cold_misses, r.warm_wall_s, r.warm_misses,
               r.warm_store_hits, r.identical ? "identical" : "COSTS DIVERGED",
               r.recompute_free ? "recompute-free" : "RECOMPUTED ARTIFACTS" );
  return r;
}

/// The daemon repeat-query measurement: one synthesis through a
/// `synthesis_daemon`, the identical query again (memory result cache),
/// and the same query against a second daemon instance sharing the store
/// root (disk result cache).
struct daemon_result
{
  double first_s = 0.0;
  double repeat_s = 0.0;
  bool repeat_from_cache = false;
  bool restart_from_cache = false;
  /// Concurrent-clients case: N identical in-flight queries against a
  /// fresh daemon must coalesce into exactly one synthesis.
  std::size_t concurrent_clients = 0;
  std::size_t concurrent_synthesized = 0;
  double concurrent_wall_s = 0.0;
  bool coalesced_ok = false;
  bool ok = false;
};

daemon_result run_daemon_repeat()
{
  daemon_result r;

  char root_template[] = "/tmp/qsyn-bench-daemon-XXXXXX";
  const std::string root = ::mkdtemp( root_template );

  const std::string request =
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":6,"flow":"esop","esop_p":1,"verify":"sampled"})";
  const auto from_cache = []( const std::string& response ) {
    return response.find( "\"from_cache\":true" ) != std::string::npos;
  };
  const auto answered_ok = []( const std::string& response ) {
    return response.find( "\"ok\":true" ) != std::string::npos;
  };

  std::string first, repeat, restarted;
  {
    store::synthesis_daemon daemon( { "", root } );
    stopwatch watch;
    first = daemon.handle_request( request );
    r.first_s = watch.elapsed_seconds();
    watch.restart();
    repeat = daemon.handle_request( request );
    r.repeat_s = watch.elapsed_seconds();
  }
  store::synthesis_daemon reborn( { "", root } );
  restarted = reborn.handle_request( request );

  r.repeat_from_cache = from_cache( repeat );
  r.restart_from_cache = from_cache( restarted ) && reborn.stats().synthesized == 0;

  // Concurrent-clients case: N identical queries fired at a fresh daemon
  // (empty store, empty memory cache) must coalesce into exactly one
  // synthesis, and every client must receive the same answer.  Strip the
  // volatile fields so bit-identity covers the circuit payload and costs.
  const auto payload_of = []( std::string response ) {
    for ( const char* field :
          { "\"from_cache\":", "\"runtime_seconds\":", "\"seconds\":" } )
    {
      const auto pos = response.find( field );
      if ( pos == std::string::npos )
      {
        continue;
      }
      auto end = response.find( ',', pos );
      if ( end == std::string::npos )
      {
        end = response.size();
      }
      else
      {
        ++end; // also remove the comma
      }
      response.erase( pos, end - pos );
    }
    return response;
  };
  {
    char concurrent_template[] = "/tmp/qsyn-bench-daemon-XXXXXX";
    const std::string concurrent_root = ::mkdtemp( concurrent_template );
    store::synthesis_daemon fresh( { "", concurrent_root } );
    constexpr std::size_t num_clients = 8;
    std::vector<std::string> responses( num_clients );
    std::vector<std::thread> clients;
    clients.reserve( num_clients );
    stopwatch watch;
    for ( std::size_t i = 0; i < num_clients; ++i )
    {
      clients.emplace_back( [&fresh, &request, &responses, i] {
        responses[i] = fresh.handle_request( request );
      } );
    }
    for ( auto& client : clients )
    {
      client.join();
    }
    r.concurrent_wall_s = watch.elapsed_seconds();
    r.concurrent_clients = num_clients;
    r.concurrent_synthesized = fresh.stats().synthesized;
    bool all_agree = true;
    for ( const auto& response : responses )
    {
      all_agree = all_agree && answered_ok( response ) &&
                  payload_of( response ) == payload_of( responses[0] );
    }
    r.coalesced_ok = all_agree && r.concurrent_synthesized == 1;
    std::error_code concurrent_ec;
    std::filesystem::remove_all( concurrent_root, concurrent_ec );
  }

  r.ok = answered_ok( first ) && answered_ok( repeat ) && answered_ok( restarted ) &&
         r.repeat_from_cache && r.restart_from_cache && r.coalesced_ok;

  std::error_code ec;
  std::filesystem::remove_all( root, ec );

  std::printf( "daemon: first %8.6f s | repeat %8.6f s (%.0fx, from_cache=%s) | "
               "restarted instance from_cache=%s | %zu concurrent clients -> "
               "%zu synthesis (%s)\n",
               r.first_s, r.repeat_s, r.first_s / ( r.repeat_s > 0 ? r.repeat_s : 1e-9 ),
               r.repeat_from_cache ? "true" : "false",
               r.restart_from_cache ? "true" : "false", r.concurrent_clients,
               r.concurrent_synthesized, r.coalesced_ok ? "coalesced" : "NOT COALESCED" );
  return r;
}

void write_json( const char* path, const std::vector<case_result>& cases,
                 const sweep_result& sweep, const store_sweep_result& store_sweep,
                 const daemon_result& daemon, bool verify, verify_mode mode,
                 unsigned num_threads )
{
  double total_seq = 0.0;
  double total_cached = 0.0;
  double total_verify = 0.0;
  bool all_identical = true;
  bool all_verified = true;
  for ( const auto& c : cases )
  {
    total_seq += c.seq_wall_s;
    total_cached += c.cached_wall_s;
    total_verify += c.verify_s;
    all_identical = all_identical && c.identical;
    all_verified = all_verified && c.all_verified;
  }

  FILE* f = std::fopen( path, "w" );
  if ( !f )
  {
    std::fprintf( stderr, "cannot open %s for writing\n", path );
    std::exit( 1 );
  }
  std::fprintf( f, "{\n  \"bench\": \"dse\",\n  \"schema_version\": 5,\n" );
  std::fprintf( f, "  \"verify\": %s,\n", verify ? "true" : "false" );
  std::fprintf( f, "  \"verify_mode\": \"%s\",\n",
                verify_mode_name( mode ).c_str() );
  std::fprintf( f, "  \"total_verify_s\": %.4f,\n", total_verify );
  std::fprintf( f, "  \"num_threads\": %u,\n", num_threads );
  std::fprintf( f, "  \"total_seq_wall_s\": %.3f,\n", total_seq );
  std::fprintf( f, "  \"total_cached_wall_s\": %.3f,\n", total_cached );
  std::fprintf( f, "  \"speedup\": %.2f,\n",
                total_seq / ( total_cached > 0 ? total_cached : 1e-9 ) );
  std::fprintf( f, "  \"all_identical\": %s,\n", all_identical ? "true" : "false" );
  std::fprintf( f, "  \"all_verified\": %s,\n", all_verified ? "true" : "false" );
  std::fprintf( f, "  \"sweep\": {\n" );
  std::fprintf( f, "    \"min_bitwidth\": %u,\n", sweep.min_n );
  std::fprintf( f, "    \"max_bitwidth\": %u,\n", sweep.max_n );
  std::fprintf( f, "    \"threads\": %u,\n", sweep.threads );
  std::fprintf( f, "    \"tail_only_wall_s\": %.4f,\n", sweep.tail_only_wall_s );
  std::fprintf( f, "    \"task_graph_wall_s\": %.4f,\n", sweep.task_graph_wall_s );
  std::fprintf( f, "    \"speedup\": %.3f,\n",
                sweep.tail_only_wall_s /
                    ( sweep.task_graph_wall_s > 0 ? sweep.task_graph_wall_s : 1e-9 ) );
  std::fprintf( f, "    \"identical\": %s,\n", sweep.identical ? "true" : "false" );
  std::fprintf( f, "    \"all_ok\": %s,\n", sweep.all_ok ? "true" : "false" );
  std::fprintf( f, "    \"tasks_run\": %zu,\n", sweep.sched.tasks_run );
  std::fprintf( f, "    \"coalesced\": %zu,\n", sweep.sched.coalesced );
  std::fprintf( f, "    \"steals\": %llu,\n",
                static_cast<unsigned long long>( sweep.sched.steals ) );
  std::fprintf( f, "    \"max_concurrent\": %zu,\n", sweep.sched.max_concurrency );
  std::fprintf( f, "    \"critical_path_s\": %.4f,\n", sweep.sched.critical_path_seconds );
  std::fprintf( f, "    \"sched_wall_s\": %.4f\n", sweep.sched.wall_seconds );
  std::fprintf( f, "  },\n" );
  std::fprintf( f, "  \"store_sweep\": {\n" );
  std::fprintf( f, "    \"min_bitwidth\": %u,\n", store_sweep.min_n );
  std::fprintf( f, "    \"max_bitwidth\": %u,\n", store_sweep.max_n );
  std::fprintf( f, "    \"cold_wall_s\": %.4f,\n", store_sweep.cold_wall_s );
  std::fprintf( f, "    \"warm_wall_s\": %.4f,\n", store_sweep.warm_wall_s );
  std::fprintf( f, "    \"cold_misses\": %zu,\n", store_sweep.cold_misses );
  std::fprintf( f, "    \"warm_misses\": %zu,\n", store_sweep.warm_misses );
  std::fprintf( f, "    \"warm_store_hits\": %zu,\n", store_sweep.warm_store_hits );
  std::fprintf( f, "    \"identical\": %s,\n", store_sweep.identical ? "true" : "false" );
  std::fprintf( f, "    \"recompute_free\": %s\n",
                store_sweep.recompute_free ? "true" : "false" );
  std::fprintf( f, "  },\n" );
  std::fprintf( f, "  \"daemon\": {\n" );
  std::fprintf( f, "    \"first_s\": %.6f,\n", daemon.first_s );
  std::fprintf( f, "    \"repeat_s\": %.6f,\n", daemon.repeat_s );
  std::fprintf( f, "    \"speedup\": %.1f,\n",
                daemon.first_s / ( daemon.repeat_s > 0 ? daemon.repeat_s : 1e-9 ) );
  std::fprintf( f, "    \"repeat_from_cache\": %s,\n",
                daemon.repeat_from_cache ? "true" : "false" );
  std::fprintf( f, "    \"restart_from_cache\": %s,\n",
                daemon.restart_from_cache ? "true" : "false" );
  std::fprintf( f, "    \"concurrent_clients\": %zu,\n", daemon.concurrent_clients );
  std::fprintf( f, "    \"concurrent_synthesized\": %zu,\n",
                daemon.concurrent_synthesized );
  std::fprintf( f, "    \"concurrent_wall_s\": %.6f,\n", daemon.concurrent_wall_s );
  std::fprintf( f, "    \"coalesced_ok\": %s\n", daemon.coalesced_ok ? "true" : "false" );
  std::fprintf( f, "  },\n" );
  std::fprintf( f, "  \"cases\": [\n" );
  for ( std::size_t i = 0; i < cases.size(); ++i )
  {
    const auto& c = cases[i];
    std::fprintf( f, "    {\n" );
    std::fprintf( f, "      \"name\": \"%s\",\n", c.name.c_str() );
    std::fprintf( f, "      \"bitwidth\": %u,\n", c.bitwidth );
    std::fprintf( f, "      \"num_configs\": %zu,\n", c.num_configs );
    std::fprintf( f, "      \"seq_wall_s\": %.4f,\n", c.seq_wall_s );
    std::fprintf( f, "      \"cached_wall_s\": %.4f,\n", c.cached_wall_s );
    std::fprintf( f, "      \"speedup\": %.2f,\n",
                  c.seq_wall_s / ( c.cached_wall_s > 0 ? c.cached_wall_s : 1e-9 ) );
    std::fprintf( f, "      \"verify_s\": %.4f,\n", c.verify_s );
    std::fprintf( f, "      \"cache_hits\": %zu,\n", c.cache_hits );
    std::fprintf( f, "      \"cache_misses\": %zu,\n", c.cache_misses );
    std::fprintf( f, "      \"sched_tasks_run\": %zu,\n", c.sched.tasks_run );
    std::fprintf( f, "      \"sched_coalesced\": %zu,\n", c.sched.coalesced );
    std::fprintf( f, "      \"sched_steals\": %llu,\n",
                  static_cast<unsigned long long>( c.sched.steals ) );
    std::fprintf( f, "      \"sched_critical_path_s\": %.4f,\n",
                  c.sched.critical_path_seconds );
    std::fprintf( f, "      \"identical\": %s\n", c.identical ? "true" : "false" );
    std::fprintf( f, "    }%s\n", i + 1 < cases.size() ? "," : "" );
  }
  std::fprintf( f, "  ]\n}\n" );
  std::fclose( f );
}

} // namespace

int main( int argc, char** argv )
{
  const char* out_path = "BENCH_dse.json";
  bool quick = false;
  bool verify = true;
  verify_mode mode = verify_mode::sampled;
  unsigned num_threads = 0;   // hardware concurrency (QSYN_THREADS honoured)
  unsigned sweep_threads = 0; // 0 = max(4, hardware): the sweep section must
                              // exercise a real multi-worker pool even when
                              // --threads pins the per-case engine to 1
  unsigned max_n = 7;
  budget limits;
  for ( int i = 1; i < argc; ++i )
  {
    if ( std::strcmp( argv[i], "--out" ) == 0 && i + 1 < argc )
    {
      out_path = argv[++i];
    }
    else if ( std::strcmp( argv[i], "--quick" ) == 0 )
    {
      quick = true;
    }
    else if ( std::strcmp( argv[i], "--no-verify" ) == 0 )
    {
      verify = false;
    }
    else if ( std::strcmp( argv[i], "--verify-mode" ) == 0 && i + 1 < argc )
    {
      const auto parsed = verify_mode_from_name( argv[++i] );
      if ( !parsed )
      {
        std::fprintf( stderr, "unknown --verify-mode '%s' (none|sampled|exhaustive|sat)\n",
                      argv[i] );
        return 1;
      }
      mode = *parsed;
      verify = mode != verify_mode::none;
    }
    else if ( std::strcmp( argv[i], "--max" ) == 0 && i + 1 < argc )
    {
      max_n = static_cast<unsigned>( std::atoi( argv[++i] ) );
    }
    else if ( std::strcmp( argv[i], "--threads" ) == 0 && i + 1 < argc )
    {
      num_threads = static_cast<unsigned>( std::atoi( argv[++i] ) );
    }
    else if ( std::strcmp( argv[i], "--sweep-threads" ) == 0 && i + 1 < argc )
    {
      sweep_threads = static_cast<unsigned>( std::atoi( argv[++i] ) );
    }
    else if ( std::strcmp( argv[i], "--deadline-ms" ) == 0 && i + 1 < argc )
    {
      limits.deadline_seconds = std::atof( argv[++i] ) / 1000.0;
    }
    else if ( std::strcmp( argv[i], "--sat-conflict-budget" ) == 0 && i + 1 < argc )
    {
      limits.sat_conflict_budget = static_cast<std::uint64_t>( std::atoll( argv[++i] ) );
    }
  }

  if ( quick )
  {
    max_n = std::min( max_n, 6u );
  }
  // The functional flow's TBS tail is a single configuration (nothing to
  // share) and grows ~4x per bit; past n = 6 it would swamp the wall clock
  // of both paths without exercising the engine.
  const unsigned functional_max_n = 6u;

  std::vector<case_result> cases;
  for ( unsigned n = 5u; n <= max_n; ++n )
  {
    for ( const auto design : { reciprocal_design::intdiv, reciprocal_design::newton } )
    {
      cases.push_back(
          run_case( design, n, n <= functional_max_n, verify, mode, num_threads, limits ) );
    }
  }

  if ( sweep_threads == 0u )
  {
    sweep_threads = std::max( 4u, thread_pool::default_num_threads() );
  }
  const auto sweep =
      run_sweep( 5u, quick ? 5u : 6u, sweep_threads, verify, mode, limits );
  const auto store_sweep = run_store_sweep( 5u, quick ? 5u : 6u, verify, mode, limits );
  const auto daemon = run_daemon_repeat();

  write_json( out_path, cases, sweep, store_sweep, daemon, verify, mode, num_threads );
  std::printf( "\nwrote %s\n", out_path );

  bool ok = sweep.identical && sweep.all_ok && store_sweep.identical &&
            store_sweep.recompute_free && daemon.ok;
  for ( const auto& c : cases )
  {
    ok = ok && c.identical && c.all_verified;
  }
  return ok ? 0 : 1;
}
