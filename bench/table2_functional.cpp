/// \file table2_functional.cpp
/// \brief Reproduces Table II: symbolic functional reversible synthesis.
///
/// Flow: Verilog -> AIG -> dc2 -> collapse -> optimum embedding -> TBS.
/// The paper's headline here is the *qubit* column: the optimum embedding
/// uses 2n-1 lines (less than the 2n of an out-of-place design), identical
/// for INTDIV and NEWTON, at the price of an enormous T-count (Toffoli
/// gates with controls on nearly all lines pay the quadratic no-ancilla
/// decomposition).
///
/// Paper reference (n: qubits / INTDIV T-count): 4: 7/597, 8: 15/51 386,
/// 10: 19/380 009, 16: 31/71 155 258.  Our explicit transformation-based
/// engine reproduces the qubit column exactly; T-counts and runtimes track
/// the paper's growth rate with implementation-dependent constants (the
/// authors ran a BDD-symbolic TBS; see DESIGN.md substitution notes).
///
/// Default sweep n = 4..8 (seconds); --max-n up to ~10 stays practical.

#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "core/flows.hpp"

int main( int argc, char** argv )
{
  using namespace qsyn;
  unsigned max_n = 8;
  for ( int i = 1; i < argc; ++i )
  {
    if ( std::strcmp( argv[i], "--max-n" ) == 0 && i + 1 < argc )
    {
      max_n = static_cast<unsigned>( std::atoi( argv[++i] ) );
    }
  }

  std::printf( "TABLE II: RESULTS WITH SYMBOLIC FUNCTIONAL REVERSIBLE SYNTHESIS\n" );
  std::printf( "%4s | %28s | %28s\n", "", "INTDIV(n)", "NEWTON(n)" );
  std::printf( "%4s | %6s %13s %7s | %6s %13s %7s\n", "n", "qubits", "T-count", "time",
               "qubits", "T-count", "time" );
  std::printf( "-----+------------------------------+------------------------------\n" );
  for ( unsigned n = 4; n <= max_n; ++n )
  {
    flow_params params;
    params.kind = flow_kind::functional;
    params.verify = n <= 8; // exhaustive check up to 2^8 inputs
    const auto rd = run_reciprocal_flow( reciprocal_design::intdiv, n, params );
    const auto rn = run_reciprocal_flow( reciprocal_design::newton, n, params );
    std::printf( "%4u | %6u %13llu %6.2fs | %6u %13llu %6.2fs%s\n", n, rd.costs.qubits,
                 static_cast<unsigned long long>( rd.costs.t_count ), rd.runtime_seconds,
                 rn.costs.qubits, static_cast<unsigned long long>( rn.costs.t_count ),
                 rn.runtime_seconds,
                 ( params.verify && ( !rd.verified || !rn.verified ) ) ? "  VERIFY-FAIL" : "" );
  }
  std::printf( "\npaper (INTDIV): n=4: 7 qb/597 T, n=8: 15 qb/51 386 T, n=10: 19 qb/380 009 T\n" );
  std::printf( "qubit column = 2n-1 (optimum embedding) is reproduced exactly.\n" );
  return 0;
}
