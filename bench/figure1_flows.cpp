/// \file figure1_flows.cpp
/// \brief Reproduces Figure 1: the design-flow graph.
///
/// Figure 1 of the paper is the flow diagram connecting the four levels
/// (design, logic synthesis, reversible synthesis, quantum) with the
/// function representation at every interface.  This bench regenerates it
/// in two forms:
///   1. a Graphviz DOT rendering of the flow graph, and
///   2. a live end-to-end trace: INTDIV(4) is pushed down every path and
///      the representation sizes at each interface are printed.

#include <cstdio>

#include "core/flows.hpp"
#include "embed/embedding.hpp"
#include "synth/aig_optimize.hpp"
#include "synth/collapse.hpp"
#include "synth/esop_extract.hpp"
#include "synth/exorcism.hpp"
#include "synth/xmg_resynth.hpp"
#include "verilog/elaborator.hpp"
#include "verilog/generators.hpp"

int main()
{
  using namespace qsyn;

  std::printf( "FIGURE 1: DESIGN FLOWS (Graphviz)\n\n" );
  std::printf( "%s\n", R"DOT(digraph design_flows {
  rankdir=TB;
  subgraph cluster_design { label="design level";
    INTDIV [shape=box]; NEWTON [shape=box]; }
  subgraph cluster_logic { label="logic synthesis level";
    collapse [shape=box,label="optimize + collapse\n(dc2, BDD)"];
    exorcism [shape=box,label="optimize + exorcism\n(AIG -> ESOP)"];
    xmglut  [shape=box,label="optimize + xmglut\n(AIG -> XMG)"]; }
  subgraph cluster_rev { label="reversible synthesis level";
    functional [shape=box,label="symbolic functional\nsynthesis (embedding+TBS)"];
    esop_synth [shape=box,label="ESOP-based\nsynthesis (REVS, p)"];
    hier_synth [shape=box,label="hierarchical\nsynthesis (REVS)"]; }
  subgraph cluster_q { label="quantum level";
    arch [shape=box,label="architectures\n(qubits / T-count model)"]; }
  INTDIV -> collapse [label="Verilog"]; NEWTON -> collapse [label="Verilog"];
  INTDIV -> exorcism [label="Verilog"]; NEWTON -> exorcism [label="Verilog"];
  INTDIV -> xmglut  [label="Verilog"]; NEWTON -> xmglut  [label="Verilog"];
  collapse -> functional [label="BDD / truth table"];
  exorcism -> esop_synth [label="ESOP"];
  xmglut  -> hier_synth  [label="XMG"];
  functional -> arch [label="rev. circuit"];
  esop_synth -> arch [label="rev. circuit"];
  hier_synth -> arch [label="rev. circuit"];
})DOT" );

  std::printf( "\n\nLIVE TRACE: INTDIV(4) through every path\n\n" );
  const auto source = verilog::generate_intdiv( 4 );
  std::printf( "[design level]  Verilog, %zu characters\n", source.size() );
  const auto elaborated = verilog::elaborate_verilog( source );
  std::printf( "[logic level]   elaborated AIG: %zu AND nodes, depth %u\n",
               elaborated.aig.num_ands(), elaborated.aig.depth() );
  const auto optimized = optimize( elaborated.aig, 2 );
  std::printf( "[logic level]   dc2-optimized AIG: %zu AND nodes, depth %u\n",
               optimized.num_ands(), optimized.depth() );

  // Path 1: collapse -> BDD -> embedding -> TBS.
  {
    bdd_manager mgr( optimized.num_pis() );
    const auto bdds = collapse_to_bdds( optimized, mgr );
    std::size_t bdd_nodes = 0;
    for ( const auto f : bdds )
    {
      bdd_nodes += mgr.size( f );
    }
    std::printf( "[interface]     BDD: %zu nodes over %u outputs\n", bdd_nodes,
                 optimized.num_pos() );
    flow_params params;
    params.kind = flow_kind::functional;
    const auto r = run_flow_on_aig( optimized, params );
    std::printf( "[reversible]    functional: %u qubits, %llu T, verified=%s\n",
                 r.costs.qubits, static_cast<unsigned long long>( r.costs.t_count ),
                 r.verified ? "yes" : "no" );
  }
  // Path 2: ESOP.
  {
    auto e = esop_from_aig( optimized );
    const auto stats = exorcism( e );
    std::printf( "[interface]     ESOP: %zu -> %zu cubes after exorcism\n",
                 stats.initial_terms, stats.final_terms );
    flow_params params;
    params.kind = flow_kind::esop_based;
    const auto r = run_flow_on_aig( optimized, params );
    std::printf( "[reversible]    ESOP-based: %u qubits, %llu T, verified=%s\n",
                 r.costs.qubits, static_cast<unsigned long long>( r.costs.t_count ),
                 r.verified ? "yes" : "no" );
  }
  // Path 3: XMG.
  {
    const auto xmg = xmg_from_aig( optimized );
    std::printf( "[interface]     XMG: %zu MAJ + %zu XOR nodes\n", xmg.num_maj(),
                 xmg.num_xor() );
    flow_params params;
    params.kind = flow_kind::hierarchical;
    const auto r = run_flow_on_aig( optimized, params );
    std::printf( "[reversible]    hierarchical: %u qubits, %llu T, verified=%s\n",
                 r.costs.qubits, static_cast<unsigned long long>( r.costs.t_count ),
                 r.verified ? "yes" : "no" );
  }
  std::printf( "\n[quantum level] cost model: see src/reversible/cost.hpp\n" );
  return 0;
}
