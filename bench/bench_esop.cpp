/// \file bench_esop.cpp
/// \brief Microbenchmark of the ESOP pipeline: PSDKRO extraction and
/// EXORCISM-style cube minimization (Sec. IV-B).
///
/// Runs ESOP extraction + exorcism over the paper's arithmetic benchmark
/// functions (INTDIV / NEWTON at several sizes) and over large random
/// ESOPs, and writes a BENCH_esop.json file with per-stage wall times and
/// term/literal counts, so that every future PR can extend the perf
/// trajectory.  The pre-rewrite all-pairs implementation (exhaustive
/// xor-equivalence validation, vector::erase deletion) is embedded below as
/// the reference; the `speedup` field in the JSON compares against it on
/// the same input.
///
/// Usage: bench_esop [--out FILE] [--skip-reference] [--quick]

#include <cstdio>
#include <cstring>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "synth/aig_optimize.hpp"
#include "synth/esop_extract.hpp"
#include "synth/exorcism.hpp"
#include "verilog/elaborator.hpp"
#include "verilog/generators.hpp"

namespace reference
{

using qsyn::cube;
using qsyn::esop;

// --- pre-rewrite implementation, kept verbatim as the baseline -------------

enum class lit_state : std::uint8_t
{
  absent,
  positive,
  negative
};

lit_state state_of( const cube& c, unsigned var )
{
  if ( !c.has_var( var ) )
  {
    return lit_state::absent;
  }
  return c.var_polarity( var ) ? lit_state::positive : lit_state::negative;
}

void set_state( cube& c, unsigned var, lit_state s )
{
  switch ( s )
  {
  case lit_state::absent:
    c.remove_literal( var );
    break;
  case lit_state::positive:
    c.add_literal( var, true );
    break;
  case lit_state::negative:
    c.add_literal( var, false );
    break;
  }
}

lit_state merge_state( lit_state a, lit_state b )
{
  const int ia = static_cast<int>( a );
  const int ib = static_cast<int>( b );
  return static_cast<lit_state>( 3 - ia - ib );
}

std::vector<unsigned> diff_positions( const cube& a, const cube& b )
{
  const auto diff_mask =
      ( a.mask ^ b.mask ) | ( ( a.polarity ^ b.polarity ) & ( a.mask & b.mask ) );
  std::vector<unsigned> positions;
  for ( unsigned v = 0; v < 64; ++v )
  {
    if ( ( diff_mask >> v ) & 1u )
    {
      positions.push_back( v );
    }
  }
  return positions;
}

bool xor_equivalent( const cube& a, const cube& b, const cube& c1, const cube* c2 )
{
  std::uint64_t vars = a.mask | b.mask | c1.mask;
  if ( c2 )
  {
    vars |= c2->mask;
  }
  std::vector<unsigned> idx;
  for ( unsigned v = 0; v < 64; ++v )
  {
    if ( ( vars >> v ) & 1u )
    {
      idx.push_back( v );
    }
  }
  for ( std::uint64_t m = 0; m < ( std::uint64_t{ 1 } << idx.size() ); ++m )
  {
    std::uint64_t input = 0;
    for ( std::size_t i = 0; i < idx.size(); ++i )
    {
      if ( ( m >> i ) & 1u )
      {
        input |= std::uint64_t{ 1 } << idx[i];
      }
    }
    const bool lhs = a.evaluate( input ) ^ b.evaluate( input );
    bool rhs = c1.evaluate( input );
    if ( c2 )
    {
      rhs ^= c2->evaluate( input );
    }
    if ( lhs != rhs )
    {
      return false;
    }
  }
  return true;
}

struct replacement
{
  cube first;
  std::optional<cube> second;

  int num_literals() const
  {
    return first.num_literals() + ( second ? second->num_literals() : 0 );
  }
  int num_cubes() const { return second ? 2 : 1; }
};

std::vector<replacement> candidates( const cube& a, const cube& b )
{
  const auto positions = diff_positions( a, b );
  std::vector<replacement> result;
  if ( positions.size() == 1u )
  {
    cube merged = a;
    set_state( merged, positions[0],
               merge_state( state_of( a, positions[0] ), state_of( b, positions[0] ) ) );
    result.push_back( { merged, std::nullopt } );
  }
  else if ( positions.size() == 2u )
  {
    const auto p1 = positions[0];
    const auto p2 = positions[1];
    const auto m1 = merge_state( state_of( a, p1 ), state_of( b, p1 ) );
    const auto m2 = merge_state( state_of( a, p2 ), state_of( b, p2 ) );
    {
      cube c1 = a;
      set_state( c1, p2, m2 );
      cube c2 = b;
      set_state( c2, p1, m1 );
      result.push_back( { c1, c2 } );
    }
    {
      cube c1 = a;
      set_state( c1, p1, m1 );
      cube c2 = b;
      set_state( c2, p2, m2 );
      result.push_back( { c1, c2 } );
    }
  }
  return result;
}

qsyn::exorcism_stats exorcism( esop& expression, unsigned max_passes = 16 )
{
  qsyn::exorcism_stats stats;
  expression.merge_identical_cubes();
  stats.initial_terms = expression.num_terms();
  stats.initial_literals = expression.num_literals();

  for ( unsigned pass = 0; pass < max_passes; ++pass )
  {
    ++stats.passes;
    bool improved = false;
    auto& terms = expression.terms;

    for ( std::size_t i = 0; i < terms.size(); ++i )
    {
      bool merged_i = false;
      for ( std::size_t j = i + 1u; j < terms.size() && !merged_i; ++j )
      {
        if ( terms[i].output_mask != terms[j].output_mask )
        {
          continue;
        }
        const auto dist = terms[i].product.distance( terms[j].product );
        if ( dist == 0 )
        {
          terms.erase( terms.begin() + static_cast<std::ptrdiff_t>( j ) );
          terms.erase( terms.begin() + static_cast<std::ptrdiff_t>( i ) );
          improved = true;
          merged_i = true;
          --i;
          break;
        }
        if ( dist > 2 )
        {
          continue;
        }
        const int old_literals =
            terms[i].product.num_literals() + terms[j].product.num_literals();
        const int old_cubes = 2;
        for ( const auto& cand : candidates( terms[i].product, terms[j].product ) )
        {
          if ( cand.num_cubes() > old_cubes ||
               ( cand.num_cubes() == old_cubes && cand.num_literals() >= old_literals ) )
          {
            continue;
          }
          if ( !xor_equivalent( terms[i].product, terms[j].product, cand.first,
                                cand.second ? &*cand.second : nullptr ) )
          {
            continue;
          }
          terms[i].product = cand.first;
          if ( cand.second )
          {
            terms[j].product = *cand.second;
          }
          else
          {
            terms.erase( terms.begin() + static_cast<std::ptrdiff_t>( j ) );
          }
          improved = true;
          merged_i = true;
          break;
        }
      }
    }
    expression.merge_identical_cubes();
    if ( !improved )
    {
      break;
    }
  }
  stats.final_terms = expression.num_terms();
  stats.final_literals = expression.num_literals();
  return stats;
}

} // namespace reference

namespace
{

using namespace qsyn;

struct case_result
{
  std::string name;
  unsigned num_inputs = 0;
  unsigned num_outputs = 0;
  std::size_t terms_initial = 0;
  std::size_t terms_final = 0;
  std::size_t literals_initial = 0;
  std::size_t literals_final = 0;
  unsigned passes = 0;
  double extract_ms = -1.0;   ///< < 0: not applicable
  double exorcism_ms = 0.0;
  double reference_ms = -1.0; ///< < 0: not run
  std::size_t reference_terms_final = 0;
  int verified = -1;          ///< -1: not checked, 0/1: result
};

/// Checks that minimization preserved every output truth table.
bool outputs_preserved( const esop& before, const esop& after )
{
  for ( unsigned o = 0; o < before.num_outputs; ++o )
  {
    if ( before.output_truth_table( o ) != after.output_truth_table( o ) )
    {
      return false;
    }
  }
  return true;
}

case_result run_case( const std::string& name, const esop& input, double extract_ms,
                      bool with_reference, bool verify )
{
  case_result r;
  r.name = name;
  r.num_inputs = input.num_inputs;
  r.num_outputs = input.num_outputs;
  r.extract_ms = extract_ms;

  esop minimized = input;
  stopwatch watch;
  const auto stats = exorcism( minimized, 64 );
  r.exorcism_ms = watch.elapsed_seconds() * 1e3;
  r.terms_initial = stats.initial_terms;
  r.terms_final = stats.final_terms;
  r.literals_initial = stats.initial_literals;
  r.literals_final = stats.final_literals;
  r.passes = stats.passes;

  if ( verify )
  {
    r.verified = outputs_preserved( input, minimized ) ? 1 : 0;
  }

  if ( with_reference )
  {
    esop ref = input;
    watch.restart();
    const auto ref_stats = reference::exorcism( ref, 64 );
    r.reference_ms = watch.elapsed_seconds() * 1e3;
    r.reference_terms_final = ref_stats.final_terms;
  }

  std::printf( "%-28s %5u in %3u out | %6zu -> %4zu terms (%2u passes) | %9.2f ms",
               name.c_str(), r.num_inputs, r.num_outputs, r.terms_initial, r.terms_final,
               r.passes, r.exorcism_ms );
  if ( r.reference_ms >= 0.0 )
  {
    std::printf( " | ref %9.2f ms -> %4zu terms (%.1fx)", r.reference_ms,
                 r.reference_terms_final, r.reference_ms / ( r.exorcism_ms > 0 ? r.exorcism_ms : 1e-3 ) );
  }
  if ( r.verified >= 0 )
  {
    std::printf( " | %s", r.verified ? "verified" : "MISMATCH" );
  }
  std::printf( "\n" );
  return r;
}

esop random_esop( unsigned num_inputs, unsigned num_outputs, std::size_t num_terms,
                  std::uint64_t seed )
{
  std::mt19937_64 rng( seed );
  const std::uint64_t var_mask = ( std::uint64_t{ 1 } << num_inputs ) - 1u;
  const std::uint64_t out_mask = ( std::uint64_t{ 1 } << num_outputs ) - 1u;
  esop e;
  e.num_inputs = num_inputs;
  e.num_outputs = num_outputs;
  e.terms.reserve( num_terms );
  for ( std::size_t t = 0; t < num_terms; ++t )
  {
    const auto mask = rng() & var_mask;
    const auto polarity = rng() & mask;
    auto outputs = rng() & out_mask;
    if ( outputs == 0u )
    {
      outputs = 1u;
    }
    e.terms.push_back( { cube{ mask, polarity }, outputs } );
  }
  return e;
}

esop minterm_esop( unsigned num_inputs, std::uint64_t seed )
{
  std::mt19937_64 rng( seed );
  const auto f =
      truth_table::from_function( num_inputs, [&]( std::uint64_t ) { return rng() & 1u; } );
  esop e;
  e.num_inputs = num_inputs;
  e.num_outputs = 1;
  const std::uint64_t all = ( std::uint64_t{ 1 } << num_inputs ) - 1u;
  for ( std::uint64_t m = 0; m < f.num_bits(); ++m )
  {
    if ( f.get_bit( m ) )
    {
      e.terms.push_back( { cube{ all, m }, 1u } );
    }
  }
  return e;
}

case_result run_arith_case( const std::string& name, const std::string& source,
                            bool with_reference, bool verify )
{
  const auto mod = verilog::elaborate_verilog( source );
  const auto optimized = optimize( mod.aig, 2 );
  stopwatch watch;
  const auto expression = esop_from_aig( optimized );
  const auto extract_ms = watch.elapsed_seconds() * 1e3;
  return run_case( name, expression, extract_ms, with_reference, verify );
}

void write_json( const char* path, const std::vector<case_result>& cases )
{
  FILE* f = std::fopen( path, "w" );
  if ( !f )
  {
    std::fprintf( stderr, "cannot open %s for writing\n", path );
    std::exit( 1 );
  }
  std::fprintf( f, "{\n  \"bench\": \"esop\",\n  \"schema_version\": 1,\n  \"cases\": [\n" );
  for ( std::size_t i = 0; i < cases.size(); ++i )
  {
    const auto& c = cases[i];
    std::fprintf( f, "    {\n" );
    std::fprintf( f, "      \"name\": \"%s\",\n", c.name.c_str() );
    std::fprintf( f, "      \"num_inputs\": %u,\n", c.num_inputs );
    std::fprintf( f, "      \"num_outputs\": %u,\n", c.num_outputs );
    std::fprintf( f, "      \"terms_initial\": %zu,\n", c.terms_initial );
    std::fprintf( f, "      \"terms_final\": %zu,\n", c.terms_final );
    std::fprintf( f, "      \"literals_initial\": %zu,\n", c.literals_initial );
    std::fprintf( f, "      \"literals_final\": %zu,\n", c.literals_final );
    std::fprintf( f, "      \"passes\": %u,\n", c.passes );
    if ( c.extract_ms >= 0.0 )
    {
      std::fprintf( f, "      \"extract_ms\": %.3f,\n", c.extract_ms );
    }
    else
    {
      std::fprintf( f, "      \"extract_ms\": null,\n" );
    }
    std::fprintf( f, "      \"exorcism_ms\": %.3f,\n", c.exorcism_ms );
    if ( c.reference_ms >= 0.0 )
    {
      std::fprintf( f, "      \"reference_ms\": %.3f,\n", c.reference_ms );
      std::fprintf( f, "      \"reference_terms_final\": %zu,\n", c.reference_terms_final );
      std::fprintf( f, "      \"speedup\": %.2f,\n",
                    c.reference_ms / ( c.exorcism_ms > 0 ? c.exorcism_ms : 1e-3 ) );
    }
    else
    {
      std::fprintf( f, "      \"reference_ms\": null,\n" );
      std::fprintf( f, "      \"reference_terms_final\": null,\n" );
      std::fprintf( f, "      \"speedup\": null,\n" );
    }
    if ( c.verified >= 0 )
    {
      std::fprintf( f, "      \"verified\": %s\n", c.verified ? "true" : "false" );
    }
    else
    {
      std::fprintf( f, "      \"verified\": null\n" );
    }
    std::fprintf( f, "    }%s\n", i + 1 < cases.size() ? "," : "" );
  }
  std::fprintf( f, "  ]\n}\n" );
  std::fclose( f );
}

} // namespace

int main( int argc, char** argv )
{
  const char* out_path = "BENCH_esop.json";
  bool with_reference = true;
  bool quick = false;
  for ( int i = 1; i < argc; ++i )
  {
    if ( std::strcmp( argv[i], "--out" ) == 0 && i + 1 < argc )
    {
      out_path = argv[++i];
    }
    else if ( std::strcmp( argv[i], "--skip-reference" ) == 0 )
    {
      with_reference = false;
    }
    else if ( std::strcmp( argv[i], "--quick" ) == 0 )
    {
      quick = true;
    }
  }

  std::vector<case_result> cases;

  // Large random multi-output ESOPs (the >= 500-term acceptance workloads).
  cases.push_back(
      run_case( "random-n10-m2-t600", random_esop( 10, 2, 600, 0xe50b1 ), -1.0, with_reference,
                true ) );
  cases.push_back(
      run_case( "random-n12-m3-t900", random_esop( 12, 3, 900, 0xe50b2 ), -1.0, with_reference,
                true ) );
  // Dense single-mask workloads: the minterm expansion of random functions.
  // minterms-n11 (~1000 terms) is the acceptance workload for the speedup
  // trajectory: dense cubes make the reference pay both the all-pairs scan
  // and the exponential xor-equivalence validation.
  cases.push_back(
      run_case( "minterms-n10", minterm_esop( 10, 0xe50b3 ), -1.0, with_reference, true ) );
  cases.push_back(
      run_case( "minterms-n11", minterm_esop( 11, 0xe50b4 ), -1.0, with_reference, true ) );

  // The paper's arithmetic benchmark functions (Verilog -> AIG -> dc2 ->
  // PSDKRO extraction -> exorcism).  Reference runs on the larger designs
  // are skipped: the pre-rewrite exhaustive validation is exponential in
  // the cube support and takes minutes there.
  cases.push_back(
      run_arith_case( "intdiv-n5", verilog::generate_intdiv( 5 ), with_reference, true ) );
  cases.push_back(
      run_arith_case( "intdiv-n6", verilog::generate_intdiv( 6 ), with_reference, true ) );
  cases.push_back(
      run_arith_case( "newton-n5", verilog::generate_newton( 5 ), with_reference, true ) );
  if ( !quick )
  {
    cases.push_back( run_arith_case( "intdiv-n8", verilog::generate_intdiv( 8 ),
                                     with_reference, false ) );
    cases.push_back( run_arith_case( "newton-n6", verilog::generate_newton( 6 ),
                                     with_reference, false ) );
    // Wide-cube designs: the reference minimizer's exhaustive validation is
    // exponential in the cube support (2^20+ evaluations per rewrite), so
    // only the new engine is timed.
    cases.push_back(
        run_arith_case( "intdiv-n10", verilog::generate_intdiv( 10 ), false, false ) );
    cases.push_back(
        run_arith_case( "intdiv-n12", verilog::generate_intdiv( 12 ), false, false ) );
  }

  write_json( out_path, cases );
  std::printf( "\nwrote %s\n", out_path );
  return 0;
}
