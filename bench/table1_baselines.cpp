/// \file table1_baselines.cpp
/// \brief Reproduces Table I: baseline results with manual design.
///
/// RESDIV(n): restoring-division reciprocal at 2n bits [24].
/// QNEWTON(n): manual Newton-Raphson design with variable per-iteration
/// precision (in the spirit of [12], [13]).
///
/// Paper reference values (qubits / T-count):
///   n=8 :  RESDIV  48 /   8 512    QNEWTON 111 /    14 632
///   n=16:  RESDIV  96 /  34 944    QNEWTON 234 /    64 004
///   n=32:  RESDIV 192 / 141 568    QNEWTON 615 /   352 440
///   n=64:  RESDIV 384 / 569 856    QNEWTON 1226 / 1 405 284
///
/// Absolute values differ by constant factors (our adder/encoder
/// constructions are not byte-identical to the authors'), but the scaling
/// (T ~ n^2, QNEWTON using ~2-2.5x the qubits of RESDIV) is the
/// reproduction target; see EXPERIMENTS.md.

#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "baseline/qnewton.hpp"
#include "baseline/resdiv.hpp"
#include "common/timer.hpp"
#include "reversible/cost.hpp"

int main( int argc, char** argv )
{
  using namespace qsyn;
  unsigned max_n = 64;
  for ( int i = 1; i < argc; ++i )
  {
    if ( std::strcmp( argv[i], "--max-n" ) == 0 && i + 1 < argc )
    {
      max_n = static_cast<unsigned>( std::atoi( argv[++i] ) );
    }
  }

  std::printf( "TABLE I: BASELINE RESULTS WITH MANUAL DESIGN\n" );
  std::printf( "%4s | %28s | %28s\n", "", "RESDIV(n)", "QNEWTON(n)" );
  std::printf( "%4s | %8s %12s %6s | %8s %12s %6s\n", "n", "qubits", "T-count", "time",
               "qubits", "T-count", "time" );
  std::printf( "-----+------------------------------+------------------------------\n" );
  for ( const unsigned n : { 8u, 16u, 32u, 64u } )
  {
    if ( n > max_n )
    {
      break;
    }
    stopwatch w1;
    const auto resdiv = build_resdiv_reciprocal( n );
    const auto rd = report_costs( resdiv.circuit );
    const auto t1 = w1.elapsed_seconds();
    stopwatch w2;
    const auto qnewton = build_qnewton( n );
    const auto qn = report_costs( qnewton.circuit );
    const auto t2 = w2.elapsed_seconds();
    std::printf( "%4u | %8u %12llu %5.2fs | %8u %12llu %5.2fs\n", n, rd.qubits,
                 static_cast<unsigned long long>( rd.t_count ), t1, qn.qubits,
                 static_cast<unsigned long long>( qn.t_count ), t2 );
  }
  std::printf( "\npaper:  RESDIV 48/96/192/384 qubits, 8512/34944/141568/569856 T\n" );
  std::printf( "        QNEWTON 111/234/615/1226 qubits, 14632/64004/352440/1405284 T\n" );
  return 0;
}
