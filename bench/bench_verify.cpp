/// \file bench_verify.cpp
/// \brief Benchmark of the verification engine: the scalar seed path (one
/// `std::vector<bool>` assignment at a time) against the 64-way
/// bit-parallel block engine, plus the SAT tier, on exhaustive
/// verification of the INTDIV/NEWTON designs.
///
/// For every (design, bitwidth, flow) case the benchmark runs exhaustive
/// circuit-vs-AIG verification three ways — scalar enumeration, block
/// enumeration (`verify_against_aig_exhaustive`), and the SAT tier — and
/// times the SAT tier itself three ways: the monolithic one-miter-per-call
/// reference engine (`sat::check_equivalence`, the PR 3 path), the
/// incremental structurally-hashed engine on a fresh instance
/// (`sat::incremental_cec`, what a cold `verify_against_aig_sat` costs),
/// and a warm re-check on a persistent engine (what every further
/// configuration of a sweep costs).  All tiers and both SAT engines must
/// accept the correct circuit and reject a deliberately corrupted copy
/// with a *real* counterexample, and the scalar and block counterexamples
/// must be bit-identical.  It writes BENCH_verify.json (schema v2, see
/// docs/ARCHITECTURE.md) with per-case wall clocks, the block-vs-scalar
/// speedup and the incremental-vs-monolithic SAT speedup so every future
/// PR can extend the perf trajectory (scripts/run_bench.sh gates on it).
///
/// Usage: bench_verify [--out FILE] [--quick]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/flows.hpp"
#include "reversible/verify.hpp"
#include "sat/cnf.hpp"
#include "sat/incremental.hpp"
#include "synth/aig_optimize.hpp"
#include "verilog/elaborator.hpp"

namespace
{

using namespace qsyn;

/// The seed's scalar exhaustive check: one heap-allocated assignment and
/// one full AIG + circuit evaluation per input vector.  Kept here as the
/// reference the block engine is measured (and bit-compared) against.
std::optional<std::vector<bool>> scalar_exhaustive( const reversible_circuit& circuit,
                                                    const aig_network& aig )
{
  const auto num_pis = aig.num_pis();
  for ( std::uint64_t x = 0; x < ( std::uint64_t{ 1 } << num_pis ); ++x )
  {
    std::vector<bool> inputs( num_pis );
    for ( unsigned i = 0; i < num_pis; ++i )
    {
      inputs[i] = ( x >> i ) & 1u;
    }
    if ( aig.evaluate( inputs ) != evaluate_circuit( circuit, inputs ) )
    {
      return inputs;
    }
  }
  return std::nullopt;
}

/// Runs `fn` repeatedly until ~0.5 s of wall clock accumulates (at least
/// once) and returns the average milliseconds per run.  The accumulation
/// window keeps the sub-millisecond block timings stable enough for the
/// regression gate in scripts/run_bench.sh.
template<typename Fn>
double time_ms( Fn&& fn )
{
  stopwatch watch;
  unsigned reps = 0;
  double elapsed = 0.0;
  do
  {
    fn();
    ++reps;
    elapsed = watch.elapsed_seconds();
  } while ( elapsed < 0.5 && reps < 100000u );
  return elapsed * 1000.0 / reps;
}

struct case_result
{
  std::string name;
  unsigned pis = 0;
  unsigned lines = 0;
  std::size_t gates = 0;
  double scalar_ms = 0.0;
  double block_ms = 0.0;
  double speedup = 0.0;      ///< block vs scalar
  double sat_mono_ms = 0.0;  ///< monolithic reference (sat::check_equivalence)
  double sat_ms = 0.0;       ///< incremental engine, cold (fresh instance)
  double sat_warm_ms = 0.0;  ///< incremental engine, warm re-check (sweep reuse)
  double sat_speedup = 0.0;  ///< monolithic vs cold incremental
  bool tiers_agree = true;      ///< all tiers accept the correct circuit,
                                ///< scalar == block bit-for-bit
  bool corrupt_rejected = true; ///< all tiers reject the corrupted circuit
};

case_result run_case( reciprocal_design design, unsigned n, flow_kind kind )
{
  case_result r;
  r.name = std::string( design == reciprocal_design::intdiv ? "intdiv" : "newton" ) + "-n" +
           std::to_string( n ) + ( kind == flow_kind::esop_based ? "-esop" : "-hier" );

  const auto mod = verilog::elaborate_verilog( reciprocal_verilog( design, n ) );
  flow_params params;
  params.kind = kind;
  params.verify = false;
  const auto flow = run_flow_on_aig( mod.aig, params );
  const auto spec = optimize( mod.aig, params.optimization_rounds );
  const auto& circuit = flow.circuit;
  r.pis = spec.num_pis();
  r.lines = circuit.num_lines();
  r.gates = circuit.num_gates();

  // --- correct circuit: every tier must accept -------------------------------
  const auto scalar_cex = scalar_exhaustive( circuit, spec );
  const auto block_cex = verify_against_aig_exhaustive( circuit, spec );

  // SAT tier, three ways, all timed on the same precomputed impl AIG so
  // the gated speedup compares the engines alone (circuit_to_aig
  // extraction is outside both scopes).  Monolithic reference: fresh
  // solver + one global miter per call (the PR 3 path, kept in
  // sat/cnf.hpp).
  const auto impl = circuit_to_aig( circuit );
  bool mono_ok = false;
  r.sat_mono_ms = time_ms( [&] { mono_ok = sat::check_equivalence( spec, impl ).equivalent; } );
  // Cold incremental: fresh engine per call — what the first `sat`-tier
  // check of a sweep costs.
  bool cold_ok = false;
  r.sat_ms = time_ms( [&] {
    sat::incremental_cec cold;
    cold_ok = cold.check( spec, impl ).equivalent;
  } );
  // Warm incremental: a persistent engine re-checking after a first encode —
  // the cost every further configuration of a sweep pays for this cone.
  sat::incremental_cec warm_engine;
  (void)warm_engine.check( spec, impl );
  bool warm_ok = false;
  r.sat_warm_ms = time_ms( [&] { warm_ok = warm_engine.check( spec, impl ).equivalent; } );
  r.sat_speedup = r.sat_ms > 0.0 ? r.sat_mono_ms / r.sat_ms : 0.0;
  r.tiers_agree = !scalar_cex && !block_cex && cold_ok && mono_ok && warm_ok;

  r.scalar_ms = time_ms( [&] { (void)scalar_exhaustive( circuit, spec ); } );
  r.block_ms = time_ms( [&] { (void)verify_against_aig_exhaustive( circuit, spec ); } );
  r.speedup = r.block_ms > 0.0 ? r.scalar_ms / r.block_ms : 0.0;

  // --- corrupted circuit: every tier must reject, scalar == block ------------
  const auto corrupted = corrupt_circuit( circuit, spec );
  const auto scalar_bad = scalar_exhaustive( corrupted, spec );
  const auto block_bad = verify_against_aig_exhaustive( corrupted, spec );
  const auto sat_bad = verify_against_aig_sat( corrupted, spec );
  const auto mono_bad = sat::check_equivalence( spec, circuit_to_aig( corrupted ) );
  r.corrupt_rejected = scalar_bad.has_value() && block_bad.has_value() &&
                       sat_bad.has_value() && !mono_bad.equivalent;
  // Scalar and block enumerate in the same order: identical counterexample.
  r.tiers_agree = r.tiers_agree && scalar_bad == block_bad;
  // SAT counterexamples are solver-dependent; require both engines' to be real.
  if ( sat_bad )
  {
    r.corrupt_rejected = r.corrupt_rejected &&
                         evaluate_circuit( corrupted, *sat_bad ) != spec.evaluate( *sat_bad );
  }
  if ( mono_bad.counterexample )
  {
    r.corrupt_rejected = r.corrupt_rejected &&
                         evaluate_circuit( corrupted, *mono_bad.counterexample ) !=
                             spec.evaluate( *mono_bad.counterexample );
  }

  std::printf( "%-16s pis %2u  gates %6zu | scalar %9.3f ms | block %8.4f ms (%6.1fx) | "
               "sat mono %8.2f ms  inc %7.2f ms (%5.1fx)  warm %7.3f ms | %s%s\n",
               r.name.c_str(), r.pis, r.gates, r.scalar_ms, r.block_ms, r.speedup,
               r.sat_mono_ms, r.sat_ms, r.sat_speedup, r.sat_warm_ms,
               r.tiers_agree ? "agree" : "TIERS DIVERGED",
               r.corrupt_rejected ? "" : ", CORRUPTION MISSED" );
  return r;
}

void write_json( const char* path, const std::vector<case_result>& cases )
{
  bool all_agree = true;
  double min_speedup = 0.0;
  double min_sat_speedup = 0.0;
  for ( const auto& c : cases )
  {
    all_agree = all_agree && c.tiers_agree && c.corrupt_rejected;
    min_speedup = min_speedup == 0.0 ? c.speedup : std::min( min_speedup, c.speedup );
    min_sat_speedup =
        min_sat_speedup == 0.0 ? c.sat_speedup : std::min( min_sat_speedup, c.sat_speedup );
  }
  FILE* f = std::fopen( path, "w" );
  if ( !f )
  {
    std::fprintf( stderr, "cannot open %s for writing\n", path );
    std::exit( 1 );
  }
  std::fprintf( f, "{\n  \"bench\": \"verify\",\n  \"schema_version\": 2,\n" );
  std::fprintf( f, "  \"all_agree\": %s,\n", all_agree ? "true" : "false" );
  std::fprintf( f, "  \"min_speedup\": %.1f,\n", min_speedup );
  std::fprintf( f, "  \"min_sat_speedup\": %.1f,\n", min_sat_speedup );
  std::fprintf( f, "  \"cases\": [\n" );
  for ( std::size_t i = 0; i < cases.size(); ++i )
  {
    const auto& c = cases[i];
    std::fprintf( f, "    {\n" );
    std::fprintf( f, "      \"name\": \"%s\",\n", c.name.c_str() );
    std::fprintf( f, "      \"pis\": %u,\n", c.pis );
    std::fprintf( f, "      \"lines\": %u,\n", c.lines );
    std::fprintf( f, "      \"gates\": %zu,\n", c.gates );
    std::fprintf( f, "      \"scalar_ms\": %.4f,\n", c.scalar_ms );
    std::fprintf( f, "      \"block_ms\": %.4f,\n", c.block_ms );
    std::fprintf( f, "      \"speedup\": %.1f,\n", c.speedup );
    std::fprintf( f, "      \"sat_mono_ms\": %.2f,\n", c.sat_mono_ms );
    std::fprintf( f, "      \"sat_ms\": %.2f,\n", c.sat_ms );
    std::fprintf( f, "      \"sat_warm_ms\": %.3f,\n", c.sat_warm_ms );
    std::fprintf( f, "      \"sat_speedup\": %.1f,\n", c.sat_speedup );
    std::fprintf( f, "      \"tiers_agree\": %s,\n", c.tiers_agree ? "true" : "false" );
    std::fprintf( f, "      \"corrupt_rejected\": %s\n", c.corrupt_rejected ? "true" : "false" );
    std::fprintf( f, "    }%s\n", i + 1 < cases.size() ? "," : "" );
  }
  std::fprintf( f, "  ]\n}\n" );
  std::fclose( f );
}

} // namespace

int main( int argc, char** argv )
{
  const char* out_path = "BENCH_verify.json";
  bool quick = false;
  for ( int i = 1; i < argc; ++i )
  {
    if ( std::strcmp( argv[i], "--out" ) == 0 && i + 1 < argc )
    {
      out_path = argv[++i];
    }
    else if ( std::strcmp( argv[i], "--quick" ) == 0 )
    {
      quick = true;
    }
  }

  std::vector<case_result> cases;
  const unsigned max_n = quick ? 7u : 8u;
  for ( unsigned n = 7u; n <= max_n; ++n )
  {
    for ( const auto design : { reciprocal_design::intdiv, reciprocal_design::newton } )
    {
      for ( const auto kind : { flow_kind::esop_based, flow_kind::hierarchical } )
      {
        cases.push_back( run_case( design, n, kind ) );
      }
    }
  }

  write_json( out_path, cases );
  std::printf( "\nwrote %s\n", out_path );

  bool ok = true;
  for ( const auto& c : cases )
  {
    ok = ok && c.tiers_agree && c.corrupt_rejected;
  }
  return ok ? 0 : 1;
}
