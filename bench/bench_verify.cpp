/// \file bench_verify.cpp
/// \brief Benchmark of the verification engine: the scalar seed path (one
/// `std::vector<bool>` assignment at a time) against the 64-way
/// bit-parallel block engine, plus the SAT tier, on exhaustive
/// verification of the INTDIV/NEWTON designs.
///
/// For every (design, bitwidth, flow) case the benchmark runs exhaustive
/// circuit-vs-AIG verification three ways — scalar enumeration, block
/// enumeration (`verify_against_aig_exhaustive_block64`, the retained
/// 64-bit oracle), and the SAT tier — and times the SAT tier itself three
/// ways: the monolithic one-miter-per-call reference engine
/// (`sat::check_equivalence`, the PR 3 path), the incremental
/// structurally-hashed engine on a fresh instance (`sat::incremental_cec`,
/// what a cold `verify_against_aig_sat` costs), and a warm re-check on a
/// persistent engine (what every further configuration of a sweep costs).
/// All tiers and both SAT engines must accept the correct circuit and
/// reject a deliberately corrupted copy with a *real* counterexample, and
/// the scalar and block counterexamples must be bit-identical.
///
/// Schema v3 adds the SIMD-wide engine: per case it times the wide
/// single-candidate pass (`wide_ms`, informational) and the frontier batch
/// — K same-shape sweep candidates verified sequentially by the 64-bit
/// oracle vs one `verify_batch_against_aig_exhaustive_budgeted` pass that
/// walks the spec AIG once per lane group for the whole frontier
/// (`frontier_speedup`, the ≥4x metric scripts/run_bench.sh gates on).
/// Every case also replays a mixed pass/fail frontier at widths
/// 64/256/512 and requires reports bit-identical to the per-candidate
/// 64-bit oracle (`widths_agree`), and records the corrupted-circuit
/// counterexample as a bit string (`cex`) so run_bench.sh can diff
/// verdicts between the AVX and portable builds.
///
/// It writes BENCH_verify.json (see docs/ARCHITECTURE.md) with per-case
/// wall clocks and the block-vs-scalar / incremental-vs-monolithic /
/// frontier-batch speedups so every future PR can extend the perf
/// trajectory (scripts/run_bench.sh gates on it).
///
/// Usage: bench_verify [--out FILE] [--quick] [--sim-only]
///   --sim-only skips the SAT tier entirely (timings and verdicts); it is
///   what run_bench.sh uses for the portable-build verdict-identity pass,
///   where only the simulation tiers are SIMD-relevant.

#include <algorithm>
#include <limits>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/flows.hpp"
#include "reversible/verify.hpp"
#include "sat/cnf.hpp"
#include "sat/incremental.hpp"
#include "synth/aig_optimize.hpp"
#include "verilog/elaborator.hpp"

namespace
{

using namespace qsyn;

/// The seed's scalar exhaustive check: one heap-allocated assignment and
/// one full AIG + circuit evaluation per input vector.  Kept here as the
/// reference the block engine is measured (and bit-compared) against.
std::optional<std::vector<bool>> scalar_exhaustive( const reversible_circuit& circuit,
                                                    const aig_network& aig )
{
  const auto num_pis = aig.num_pis();
  for ( std::uint64_t x = 0; x < ( std::uint64_t{ 1 } << num_pis ); ++x )
  {
    std::vector<bool> inputs( num_pis );
    for ( unsigned i = 0; i < num_pis; ++i )
    {
      inputs[i] = ( x >> i ) & 1u;
    }
    if ( aig.evaluate( inputs ) != evaluate_circuit( circuit, inputs ) )
    {
      return inputs;
    }
  }
  return std::nullopt;
}

/// Runs `fn` repeatedly until ~0.5 s of wall clock accumulates (at least
/// once) and returns the average milliseconds per run.  The accumulation
/// window keeps the sub-millisecond block timings stable enough for the
/// regression gate in scripts/run_bench.sh.
template<typename Fn>
double time_ms( Fn&& fn )
{
  stopwatch watch;
  unsigned reps = 0;
  double elapsed = 0.0;
  do
  {
    fn();
    ++reps;
    elapsed = watch.elapsed_seconds();
  } while ( elapsed < 0.5 && reps < 100000u );
  return elapsed * 1000.0 / reps;
}

/// Number of same-shape candidates in the timed frontier batch — the
/// size of a typical DSE sweep frontier sharing one spec AIG.
constexpr std::size_t frontier_k = 8;

struct case_result
{
  std::string name;
  unsigned pis = 0;
  unsigned lines = 0;
  std::size_t gates = 0;
  double scalar_ms = 0.0;
  double block_ms = 0.0;
  double speedup = 0.0;      ///< block vs scalar
  double wide_ms = 0.0;      ///< wide single-candidate pass at the DSE default width
  double wide_speedup = 0.0; ///< block64 vs wide, single candidate
  double block64_word_us = 0.0; ///< sustained 64-bit oracle cost per 64-assignment word
  double wide_word_us = 0.0;    ///< sustained w512 engine cost per word
  double width_speedup = 0.0;   ///< per-word throughput, wide vs 64-bit (the >=4x gate)
  double frontier_block64_ms = 0.0; ///< K sequential 64-bit oracle passes
  double frontier_wide_ms = 0.0;    ///< one batched wide pass over the K candidates
  double frontier_speedup = 0.0;    ///< the gated wide-vs-64-bit metric
  std::string simd_backend;  ///< kernel backend active at the case's width
  std::string cex;           ///< corrupted-circuit counterexample, bit i = input i
  double sat_mono_ms = 0.0;  ///< monolithic reference (sat::check_equivalence)
  double sat_ms = 0.0;       ///< incremental engine, cold (fresh instance)
  double sat_warm_ms = 0.0;  ///< incremental engine, warm re-check (sweep reuse)
  double sat_speedup = 0.0;  ///< monolithic vs cold incremental
  bool tiers_agree = true;      ///< all tiers accept the correct circuit,
                                ///< scalar == block bit-for-bit
  bool corrupt_rejected = true; ///< all tiers reject the corrupted circuit
  bool widths_agree = true;     ///< batch reports at w64/w256/w512 bit-identical
                                ///< to the per-candidate 64-bit oracle
};

std::string cex_string( const std::optional<std::vector<bool>>& cex )
{
  if ( !cex )
  {
    return "none";
  }
  std::string s;
  s.reserve( cex->size() );
  for ( const auto bit : *cex )
  {
    s.push_back( bit ? '1' : '0' );
  }
  return s;
}

bool reports_equal( const partial_verify_report& a, const partial_verify_report& b )
{
  return a.counterexample == b.counterexample &&
         a.assignments_requested == b.assignments_requested &&
         a.assignments_completed == b.assignments_completed && a.complete == b.complete;
}

case_result run_case( reciprocal_design design, unsigned n, flow_kind kind, bool sim_only )
{
  case_result r;
  r.name = std::string( design == reciprocal_design::intdiv ? "intdiv" : "newton" ) + "-n" +
           std::to_string( n ) + ( kind == flow_kind::esop_based ? "-esop" : "-hier" );

  const auto mod = verilog::elaborate_verilog( reciprocal_verilog( design, n ) );
  flow_params params;
  params.kind = kind;
  params.verify = false;
  const auto flow = run_flow_on_aig( mod.aig, params );
  const auto spec = optimize( mod.aig, params.optimization_rounds );
  const auto& circuit = flow.circuit;
  r.pis = spec.num_pis();
  r.lines = circuit.num_lines();
  r.gates = circuit.num_gates();

  // --- correct circuit: every tier must accept -------------------------------
  const auto scalar_cex = scalar_exhaustive( circuit, spec );
  const auto block_cex = verify_against_aig_exhaustive( circuit, spec );

  // SAT tier, three ways, all timed on the same precomputed impl AIG so
  // the gated speedup compares the engines alone (circuit_to_aig
  // extraction is outside both scopes).  Monolithic reference: fresh
  // solver + one global miter per call (the PR 3 path, kept in
  // sat/cnf.hpp).
  bool mono_ok = true;
  bool cold_ok = true;
  bool warm_ok = true;
  if ( !sim_only )
  {
    const auto impl = circuit_to_aig( circuit );
    r.sat_mono_ms = time_ms( [&] { mono_ok = sat::check_equivalence( spec, impl ).equivalent; } );
    // Cold incremental: fresh engine per call — what the first `sat`-tier
    // check of a sweep costs.
    r.sat_ms = time_ms( [&] {
      sat::incremental_cec cold;
      cold_ok = cold.check( spec, impl ).equivalent;
    } );
    // Warm incremental: a persistent engine re-checking after a first encode —
    // the cost every further configuration of a sweep pays for this cone.
    sat::incremental_cec warm_engine;
    (void)warm_engine.check( spec, impl );
    r.sat_warm_ms = time_ms( [&] { warm_ok = warm_engine.check( spec, impl ).equivalent; } );
    r.sat_speedup = r.sat_ms > 0.0 ? r.sat_mono_ms / r.sat_ms : 0.0;
  }
  r.tiers_agree = !scalar_cex && !block_cex && cold_ok && mono_ok && warm_ok;

  r.scalar_ms = time_ms( [&] { (void)scalar_exhaustive( circuit, spec ); } );
  r.block_ms =
      time_ms( [&] { (void)verify_against_aig_exhaustive_block64( circuit, spec, deadline{} ); } );
  r.speedup = r.block_ms > 0.0 ? r.scalar_ms / r.block_ms : 0.0;

  // --- the SIMD-wide engine and the frontier batch ---------------------------
  // Width as the DSE exhaustive tier picks it for this input space; w64
  // always runs the portable scalar kernels, so n <= 6 cases would measure
  // engine layout, not SIMD width.
  const auto width = auto_sim_width( std::uint64_t{ 1 } << r.pis );
  r.simd_backend = simd_backend_name( active_simd_backend( width ) );
  r.wide_ms = time_ms(
      [&] { (void)verify_against_aig_exhaustive_budgeted( circuit, spec, deadline{}, width ); } );
  r.wide_speedup = r.wide_ms > 0.0 ? r.block_ms / r.wide_ms : 0.0;

  // Sustained per-word verification throughput, the gated wide-vs-64-bit
  // metric: persistent engines (construction amortized away, as in a long
  // sweep), spec walk included on both sides, cost divided by the words a
  // pass settles.  The 64-bit side is the retained oracle's inner loop
  // (block_simulator + aig_network::simulate_patterns per word); the wide
  // side runs the w512 lane group.  Per-word is the width-scaling measure:
  // at n=7 a 512-lane group wraps the 128-assignment space, so whole-case
  // wall clocks (wide_ms, frontier_wide_ms) can gain at most 2x there —
  // the full-width gain materializes whenever a group is filled (n >= 9
  // spaces, sampled tiers, fraig signatures).
  {
    block_simulator narrow( circuit );
    std::vector<std::uint64_t> narrow_words( r.pis, 0u );
    volatile std::uint64_t sink = 0;
    const auto wide_width = sim_width::w512;
    const auto wide_words_per_group = words_of( wide_width );
    wide_simulator wide( circuit, wide_width );
    wide_aig_simulator wide_spec( spec, wide_width );
    std::vector<std::uint64_t> group_words( std::size_t{ r.pis } * wide_words_per_group, 0u );
    // Interleaved best-of-5: a transient load spike during one side's
    // window would otherwise skew the ratio; the min of alternating
    // rounds is each engine's unperturbed cost.
    auto narrow_ms = std::numeric_limits<double>::infinity();
    auto group_ms = std::numeric_limits<double>::infinity();
    for ( int round = 0; round < 5; ++round )
    {
      narrow_ms = std::min( narrow_ms, time_ms( [&] {
                    const auto& spec_out = spec.simulate_patterns( narrow_words );
                    const auto& out = narrow.evaluate( narrow_words );
                    sink = sink + out.front() + spec_out.front();
                  } ) );
      group_ms = std::min( group_ms, time_ms( [&] {
                   const auto& spec_out = wide_spec.evaluate( group_words );
                   const auto& out = wide.evaluate( group_words );
                   sink = sink + out.front() + spec_out.front();
                 } ) );
    }
    r.block64_word_us = narrow_ms * 1000.0;
    r.wide_word_us = group_ms * 1000.0 / static_cast<double>( wide_words_per_group );
    r.width_speedup = r.wide_word_us > 0.0 ? r.block64_word_us / r.wide_word_us : 0.0;
  }

  // Frontier batch: K same-shape candidates against one spec — the serial
  // sweep pays K full oracle passes (each re-simulating the spec AIG per
  // 64-block), the batch walks the spec once per lane group.
  const std::vector<const reversible_circuit*> frontier( frontier_k, &circuit );
  r.frontier_block64_ms = time_ms( [&] {
    for ( const auto* candidate : frontier )
    {
      (void)verify_against_aig_exhaustive_block64( *candidate, spec, deadline{} );
    }
  } );
  r.frontier_wide_ms = time_ms(
      [&] { (void)verify_batch_against_aig_exhaustive_budgeted( frontier, spec, deadline{}, width ); } );
  r.frontier_speedup =
      r.frontier_wide_ms > 0.0 ? r.frontier_block64_ms / r.frontier_wide_ms : 0.0;

  // --- corrupted circuit: every tier must reject, scalar == block ------------
  const auto corrupted = corrupt_circuit( circuit, spec );
  const auto scalar_bad = scalar_exhaustive( corrupted, spec );
  const auto block_bad = verify_against_aig_exhaustive( corrupted, spec );
  r.corrupt_rejected = scalar_bad.has_value() && block_bad.has_value();
  // Scalar and block enumerate in the same order: identical counterexample.
  r.tiers_agree = r.tiers_agree && scalar_bad == block_bad;
  r.cex = cex_string( block_bad );
  if ( !sim_only )
  {
    const auto sat_bad = verify_against_aig_sat( corrupted, spec );
    const auto mono_bad = sat::check_equivalence( spec, circuit_to_aig( corrupted ) );
    r.corrupt_rejected = r.corrupt_rejected && sat_bad.has_value() && !mono_bad.equivalent;
    // SAT counterexamples are solver-dependent; require both engines' to be real.
    if ( sat_bad )
    {
      r.corrupt_rejected = r.corrupt_rejected &&
                           evaluate_circuit( corrupted, *sat_bad ) != spec.evaluate( *sat_bad );
    }
    if ( mono_bad.counterexample )
    {
      r.corrupt_rejected = r.corrupt_rejected &&
                           evaluate_circuit( corrupted, *mono_bad.counterexample ) !=
                               spec.evaluate( *mono_bad.counterexample );
    }
  }

  // --- per-width bit-identity on a mixed pass/fail frontier ------------------
  // Candidates failing at different columns (the NOT flips every column,
  // the 3-control MCT only fires from column 7 on) pin the
  // first-counterexample contract, the early-retire bookkeeping and the
  // per-assignment accounting against the 64-bit oracle at every width.
  auto flip_first = circuit;
  flip_first.add_not( output_lines_of( circuit ).front() );
  auto flip_late = circuit;
  {
    const auto ins = input_lines_of( circuit );
    const std::vector<control> controls = { { ins[0], true }, { ins[1], true }, { ins[2], true } };
    auto target = output_lines_of( circuit ).front();
    for ( const auto line : output_lines_of( circuit ) )
    {
      if ( line != ins[0] && line != ins[1] && line != ins[2] )
      {
        target = line;
        break;
      }
    }
    flip_late.add_mct( controls, target );
  }
  const std::vector<const reversible_circuit*> mixed = { &circuit, &flip_first, &flip_late,
                                                         &corrupted };
  std::vector<partial_verify_report> oracle;
  oracle.reserve( mixed.size() );
  for ( const auto* candidate : mixed )
  {
    oracle.push_back( verify_against_aig_exhaustive_block64( *candidate, spec, deadline{} ) );
  }
  for ( const auto w : { sim_width::w64, sim_width::w256, sim_width::w512 } )
  {
    const auto wide = verify_batch_against_aig_exhaustive_budgeted( mixed, spec, deadline{}, w );
    for ( std::size_t c = 0; c < mixed.size(); ++c )
    {
      r.widths_agree = r.widths_agree && reports_equal( wide[c], oracle[c] );
    }
  }

  std::printf( "%-16s pis %2u  gates %6zu | scalar %9.3f ms | block %8.4f ms (%6.1fx) | "
               "word %8.3f -> %7.3f us (%4.1fx, %s) | wide %8.4f ms (%4.1fx) | "
               "frontier x%zu %8.4f -> %8.4f ms (%4.1fx) | "
               "sat mono %8.2f ms  inc %7.2f ms (%5.1fx)  warm %7.3f ms | %s%s%s\n",
               r.name.c_str(), r.pis, r.gates, r.scalar_ms, r.block_ms, r.speedup,
               r.block64_word_us, r.wide_word_us, r.width_speedup, r.simd_backend.c_str(),
               r.wide_ms, r.wide_speedup, frontier_k, r.frontier_block64_ms, r.frontier_wide_ms,
               r.frontier_speedup, r.sat_mono_ms, r.sat_ms, r.sat_speedup, r.sat_warm_ms,
               r.tiers_agree ? "agree" : "TIERS DIVERGED",
               r.corrupt_rejected ? "" : ", CORRUPTION MISSED",
               r.widths_agree ? "" : ", WIDTHS DIVERGED" );
  return r;
}

void write_json( const char* path, const std::vector<case_result>& cases, bool sim_only )
{
  bool all_agree = true;
  bool widths_agree = true;
  double min_speedup = 0.0;
  double min_sat_speedup = 0.0;
  double min_wide_speedup = 0.0;
  double min_frontier_speedup = 0.0;
  double min_width_speedup = 0.0;
  for ( const auto& c : cases )
  {
    all_agree = all_agree && c.tiers_agree && c.corrupt_rejected && c.widths_agree;
    widths_agree = widths_agree && c.widths_agree;
    min_speedup = min_speedup == 0.0 ? c.speedup : std::min( min_speedup, c.speedup );
    min_sat_speedup =
        min_sat_speedup == 0.0 ? c.sat_speedup : std::min( min_sat_speedup, c.sat_speedup );
    min_wide_speedup =
        min_wide_speedup == 0.0 ? c.wide_speedup : std::min( min_wide_speedup, c.wide_speedup );
    min_frontier_speedup = min_frontier_speedup == 0.0
                               ? c.frontier_speedup
                               : std::min( min_frontier_speedup, c.frontier_speedup );
    min_width_speedup =
        min_width_speedup == 0.0 ? c.width_speedup : std::min( min_width_speedup, c.width_speedup );
  }
  FILE* f = std::fopen( path, "w" );
  if ( !f )
  {
    std::fprintf( stderr, "cannot open %s for writing\n", path );
    std::exit( 1 );
  }
  std::fprintf( f, "{\n  \"bench\": \"verify\",\n  \"schema_version\": 3,\n" );
  std::fprintf( f, "  \"sim_only\": %s,\n", sim_only ? "true" : "false" );
  std::fprintf( f, "  \"simd_backend\": \"%s\",\n",
                simd_backend_name( active_simd_backend( sim_width::w512 ) ) );
  std::fprintf( f, "  \"all_agree\": %s,\n", all_agree ? "true" : "false" );
  std::fprintf( f, "  \"widths_agree\": %s,\n", widths_agree ? "true" : "false" );
  std::fprintf( f, "  \"min_speedup\": %.1f,\n", min_speedup );
  std::fprintf( f, "  \"min_sat_speedup\": %.1f,\n", min_sat_speedup );
  std::fprintf( f, "  \"min_wide_speedup\": %.1f,\n", min_wide_speedup );
  std::fprintf( f, "  \"min_frontier_speedup\": %.1f,\n", min_frontier_speedup );
  // Two decimals: the run_bench.sh floors compare these values, and one
  // decimal would round a failing 3.46 into a passing 3.5.
  std::fprintf( f, "  \"min_width_speedup\": %.2f,\n", min_width_speedup );
  std::fprintf( f, "  \"frontier_k\": %zu,\n", frontier_k );
  std::fprintf( f, "  \"cases\": [\n" );
  for ( std::size_t i = 0; i < cases.size(); ++i )
  {
    const auto& c = cases[i];
    std::fprintf( f, "    {\n" );
    std::fprintf( f, "      \"name\": \"%s\",\n", c.name.c_str() );
    std::fprintf( f, "      \"pis\": %u,\n", c.pis );
    std::fprintf( f, "      \"lines\": %u,\n", c.lines );
    std::fprintf( f, "      \"gates\": %zu,\n", c.gates );
    std::fprintf( f, "      \"scalar_ms\": %.4f,\n", c.scalar_ms );
    std::fprintf( f, "      \"block_ms\": %.4f,\n", c.block_ms );
    std::fprintf( f, "      \"speedup\": %.1f,\n", c.speedup );
    std::fprintf( f, "      \"wide_ms\": %.4f,\n", c.wide_ms );
    std::fprintf( f, "      \"wide_speedup\": %.1f,\n", c.wide_speedup );
    std::fprintf( f, "      \"block64_word_us\": %.4f,\n", c.block64_word_us );
    std::fprintf( f, "      \"wide_word_us\": %.4f,\n", c.wide_word_us );
    std::fprintf( f, "      \"width_speedup\": %.2f,\n", c.width_speedup );
    std::fprintf( f, "      \"frontier_block64_ms\": %.4f,\n", c.frontier_block64_ms );
    std::fprintf( f, "      \"frontier_wide_ms\": %.4f,\n", c.frontier_wide_ms );
    std::fprintf( f, "      \"frontier_speedup\": %.1f,\n", c.frontier_speedup );
    std::fprintf( f, "      \"simd_backend\": \"%s\",\n", c.simd_backend.c_str() );
    std::fprintf( f, "      \"cex\": \"%s\",\n", c.cex.c_str() );
    std::fprintf( f, "      \"sat_mono_ms\": %.2f,\n", c.sat_mono_ms );
    std::fprintf( f, "      \"sat_ms\": %.2f,\n", c.sat_ms );
    std::fprintf( f, "      \"sat_warm_ms\": %.3f,\n", c.sat_warm_ms );
    std::fprintf( f, "      \"sat_speedup\": %.1f,\n", c.sat_speedup );
    std::fprintf( f, "      \"tiers_agree\": %s,\n", c.tiers_agree ? "true" : "false" );
    std::fprintf( f, "      \"corrupt_rejected\": %s,\n", c.corrupt_rejected ? "true" : "false" );
    std::fprintf( f, "      \"widths_agree\": %s\n", c.widths_agree ? "true" : "false" );
    std::fprintf( f, "    }%s\n", i + 1 < cases.size() ? "," : "" );
  }
  std::fprintf( f, "  ]\n}\n" );
  std::fclose( f );
}

} // namespace

int main( int argc, char** argv )
{
  const char* out_path = "BENCH_verify.json";
  bool quick = false;
  bool sim_only = false;
  for ( int i = 1; i < argc; ++i )
  {
    if ( std::strcmp( argv[i], "--out" ) == 0 && i + 1 < argc )
    {
      out_path = argv[++i];
    }
    else if ( std::strcmp( argv[i], "--quick" ) == 0 )
    {
      quick = true;
    }
    else if ( std::strcmp( argv[i], "--sim-only" ) == 0 )
    {
      sim_only = true;
    }
  }

  std::vector<case_result> cases;
  const unsigned max_n = quick ? 7u : 8u;
  for ( unsigned n = 7u; n <= max_n; ++n )
  {
    for ( const auto design : { reciprocal_design::intdiv, reciprocal_design::newton } )
    {
      for ( const auto kind : { flow_kind::esop_based, flow_kind::hierarchical } )
      {
        cases.push_back( run_case( design, n, kind, sim_only ) );
      }
    }
  }

  write_json( out_path, cases, sim_only );
  std::printf( "\nwrote %s\n", out_path );

  bool ok = true;
  for ( const auto& c : cases )
  {
    ok = ok && c.tiers_agree && c.corrupt_rejected && c.widths_agree;
  }
  return ok ? 0 : 1;
}
