/// \file table3_esop.cpp
/// \brief Reproduces Table III: ESOP-based synthesis (REVS), p = 0 and p = 1.
///
/// Flow: Verilog -> AIG -> dc2 -> ESOP extraction -> exorcism -> REVS-style
/// cube-to-Toffoli synthesis.  At p = 0 the circuit uses exactly 2n qubits;
/// p = 1 factors shared control pairs into ancilla lines, trading extra
/// qubits for T-count.
///
/// Paper reference (INTDIV, p=0): n=5: 10 qb/232 T, n=8: 16/1 342,
/// n=10: 20/3 415, n=16: 32/52 376.  p=1 rows add a few lines and cut T by
/// ~10-30%.  The 2n qubit column is exact by construction; T-counts track
/// the paper's growth with implementation-dependent constants.
///
/// Default sweep n = 5..10; --max-n extends (collapse + PSDKRO extraction
/// grow exponentially in n — n = 12..14 are minutes).

#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "core/flows.hpp"

int main( int argc, char** argv )
{
  using namespace qsyn;
  unsigned max_n = 10;
  for ( int i = 1; i < argc; ++i )
  {
    if ( std::strcmp( argv[i], "--max-n" ) == 0 && i + 1 < argc )
    {
      max_n = static_cast<unsigned>( std::atoi( argv[++i] ) );
    }
  }

  std::printf( "TABLE III: RESULTS WITH ESOP-BASED SYNTHESIS (REVS)\n" );
  std::printf( "%3s |%30s|%30s|%30s|%30s\n", "", " INTDIV p=0", " NEWTON p=0", " INTDIV p=1",
               " NEWTON p=1" );
  std::printf( "%3s |%7s %13s %7s |%7s %13s %7s |%7s %13s %7s |%7s %13s %7s\n", "n", "qubits",
               "T-count", "time", "qubits", "T-count", "time", "qubits", "T-count", "time",
               "qubits", "T-count", "time" );
  for ( unsigned n = 5; n <= max_n; ++n )
  {
    std::printf( "%3u |", n );
    for ( const unsigned p : { 0u, 1u } )
    {
      for ( const auto design : { reciprocal_design::intdiv, reciprocal_design::newton } )
      {
        flow_params params;
        params.kind = flow_kind::esop_based;
        params.esop_p = p;
        params.verify = n <= 9;
        const auto r = run_reciprocal_flow( design, n, params );
        std::printf( "%7u %13llu %6.2fs |", r.costs.qubits,
                     static_cast<unsigned long long>( r.costs.t_count ), r.runtime_seconds );
      }
    }
    std::printf( "\n" );
  }
  std::printf( "\npaper (INTDIV p=0): n=5: 10 qb/232 T, n=8: 16/1342, n=10: 20/3415\n" );
  std::printf( "qubits = 2n at p = 0 is reproduced exactly; p = 1 adds ancillae and\n" );
  std::printf( "reduces the control-weighted T-count.\n" );
  return 0;
}
