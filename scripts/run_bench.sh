#!/usr/bin/env bash
# Builds Release, runs the ESOP microbenchmark, and compares the freshly
# emitted BENCH_esop.json against the committed baseline at the repo root.
# Fails when any case regresses its final term count by more than 10%.
#
# Usage: scripts/run_bench.sh [--quick]
#   --quick   run the reduced workload set (faster; compares only the cases
#             present in both files)

set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)
BUILD_DIR="$REPO_ROOT/build-bench"
BASELINE="$REPO_ROOT/BENCH_esop.json"
FRESH="$BUILD_DIR/BENCH_esop.json"

QUICK_ARGS=()
if [[ "${1:-}" == "--quick" ]]; then
  QUICK_ARGS+=(--quick)
fi

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_esop
"$BUILD_DIR/bench/bench_esop" --out "$FRESH" "${QUICK_ARGS[@]}"

if [[ ! -f "$BASELINE" ]]; then
  echo "No committed baseline at $BASELINE; copy $FRESH there to create one."
  exit 1
fi

python3 - "$BASELINE" "$FRESH" <<'EOF'
import json
import sys

TERM_REGRESSION_LIMIT = 0.10

with open(sys.argv[1]) as f:
    baseline = {c["name"]: c for c in json.load(f)["cases"]}
with open(sys.argv[2]) as f:
    fresh = {c["name"]: c for c in json.load(f)["cases"]}

failures = []
for name, base in sorted(baseline.items()):
    new = fresh.get(name)
    if new is None:
        continue  # quick runs omit the larger cases
    if new.get("verified") is False:
        failures.append(f"{name}: minimized ESOP no longer matches the input function")
    limit = base["terms_final"] * (1.0 + TERM_REGRESSION_LIMIT)
    if new["terms_final"] > limit:
        failures.append(
            f"{name}: terms_final {new['terms_final']} vs baseline "
            f"{base['terms_final']} (> {TERM_REGRESSION_LIMIT:.0%} regression)"
        )
    speed = ""
    if new.get("exorcism_ms") and base.get("exorcism_ms"):
        speed = f"  exorcism {base['exorcism_ms']:.2f} -> {new['exorcism_ms']:.2f} ms"
    print(f"{name}: terms {base['terms_final']} -> {new['terms_final']}{speed}")

if failures:
    print("\nBENCHMARK REGRESSIONS:")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print("\nbenchmark OK (term counts within {:.0%} of baseline)".format(TERM_REGRESSION_LIMIT))
EOF
