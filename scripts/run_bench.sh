#!/usr/bin/env bash
# Builds Release, runs the ESOP and DSE benchmarks, and compares the freshly
# emitted BENCH_*.json files against the committed baselines at the repo
# root.  Fails when
#   * any ESOP case regresses its final term count by more than 10%,
#   * the DSE engine's cached sweep regresses its wall clock by more than
#     10% against the committed baseline (or its costs diverge from the
#     sequential path).
#
# Usage: scripts/run_bench.sh [--quick]
#   --quick   run the reduced workload sets (faster; compares only the
#             cases present in both files)

set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)
BUILD_DIR="$REPO_ROOT/build-bench"

QUICK_ARGS=()
if [[ "${1:-}" == "--quick" ]]; then
  QUICK_ARGS+=(--quick)
fi

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_esop bench_dse

# --- ESOP term-count gate ----------------------------------------------------

BASELINE="$REPO_ROOT/BENCH_esop.json"
FRESH="$BUILD_DIR/BENCH_esop.json"
"$BUILD_DIR/bench/bench_esop" --out "$FRESH" "${QUICK_ARGS[@]}"

if [[ ! -f "$BASELINE" ]]; then
  echo "No committed baseline at $BASELINE; copy $FRESH there to create one."
  exit 1
fi

python3 - "$BASELINE" "$FRESH" <<'EOF'
import json
import sys

TERM_REGRESSION_LIMIT = 0.10

with open(sys.argv[1]) as f:
    baseline = {c["name"]: c for c in json.load(f)["cases"]}
with open(sys.argv[2]) as f:
    fresh = {c["name"]: c for c in json.load(f)["cases"]}

failures = []
for name, base in sorted(baseline.items()):
    new = fresh.get(name)
    if new is None:
        continue  # quick runs omit the larger cases
    if new.get("verified") is False:
        failures.append(f"{name}: minimized ESOP no longer matches the input function")
    limit = base["terms_final"] * (1.0 + TERM_REGRESSION_LIMIT)
    if new["terms_final"] > limit:
        failures.append(
            f"{name}: terms_final {new['terms_final']} vs baseline "
            f"{base['terms_final']} (> {TERM_REGRESSION_LIMIT:.0%} regression)"
        )
    speed = ""
    if new.get("exorcism_ms") and base.get("exorcism_ms"):
        speed = f"  exorcism {base['exorcism_ms']:.2f} -> {new['exorcism_ms']:.2f} ms"
    print(f"{name}: terms {base['terms_final']} -> {new['terms_final']}{speed}")

if failures:
    print("\nBENCHMARK REGRESSIONS:")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print("\nesop benchmark OK (term counts within {:.0%} of baseline)".format(TERM_REGRESSION_LIMIT))
EOF

# --- DSE wall-clock gate -----------------------------------------------------

DSE_BASELINE="$REPO_ROOT/BENCH_dse.json"
DSE_FRESH="$BUILD_DIR/BENCH_dse.json"
# --threads 1: the gate measures the caching engine; thread-count
# differences between machines must not mask (or fake) a regression.
"$BUILD_DIR/bench/bench_dse" --threads 1 --out "$DSE_FRESH" "${QUICK_ARGS[@]}"

if [[ ! -f "$DSE_BASELINE" ]]; then
  echo "No committed baseline at $DSE_BASELINE; copy $DSE_FRESH there to create one."
  exit 1
fi

python3 - "$DSE_BASELINE" "$DSE_FRESH" <<'EOF'
import json
import sys

WALL_REGRESSION_LIMIT = 0.10

with open(sys.argv[1]) as f:
    baseline = json.load(f)
with open(sys.argv[2]) as f:
    fresh = json.load(f)

failures = []
if not fresh.get("all_identical", False):
    failures.append("cached sweep costs diverged from the sequential path")
if fresh.get("verify", False) and not fresh.get("all_verified", False):
    failures.append("a swept configuration failed verification")

base_cases = {c["name"]: c for c in baseline["cases"]}
fresh_cases = {c["name"]: c for c in fresh["cases"]}
base_total = 0.0
fresh_total = 0.0
base_seq = 0.0
fresh_seq = 0.0
for name, base in sorted(base_cases.items()):
    new = fresh_cases.get(name)
    if new is None:
        continue  # quick runs omit the larger cases
    base_total += base["cached_wall_s"]
    fresh_total += new["cached_wall_s"]
    base_seq += base["seq_wall_s"]
    fresh_seq += new["seq_wall_s"]
    print(
        f"{name}: cached {base['cached_wall_s']:.3f} -> {new['cached_wall_s']:.3f} s"
        f"  (speedup vs sequential {new['speedup']:.2f}x)"
    )

# Primary, machine-independent gate: cached-vs-sequential speedup, both
# halves measured in the same fresh run.  A >10% drop of that ratio vs
# the baseline's means the caching engine itself regressed.
base_speedup = (base_seq / base_total) if base_total > 0 else 0.0
fresh_speedup = (fresh_seq / fresh_total) if fresh_total > 0 else 0.0
if base_speedup > 0 and fresh_speedup < base_speedup * (1.0 - WALL_REGRESSION_LIMIT):
    failures.append(
        f"cached-vs-sequential speedup {fresh_speedup:.2f}x vs baseline "
        f"{base_speedup:.2f}x (> {WALL_REGRESSION_LIMIT:.0%} regression)"
    )

# Secondary, machine-dependent gate: absolute cached wall clock.  Only
# meaningful against a baseline recorded on the same machine — re-baseline
# BENCH_dse.json there (see README) if this fires on different hardware.
if base_total > 0 and fresh_total > base_total * (1.0 + WALL_REGRESSION_LIMIT):
    failures.append(
        f"cached sweep wall clock {fresh_total:.3f} s vs baseline {base_total:.3f} s "
        f"(> {WALL_REGRESSION_LIMIT:.0%} regression; machine-dependent — "
        f"re-baseline if hardware changed)"
    )

if failures:
    print("\nBENCHMARK REGRESSIONS:")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print(
    "\ndse benchmark OK (cached wall {:.3f} s vs baseline {:.3f} s, within {:.0%})".format(
        fresh_total, base_total, WALL_REGRESSION_LIMIT
    )
)
EOF
