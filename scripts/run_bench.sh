#!/usr/bin/env bash
# Builds Release, runs the ESOP, DSE and verification benchmarks, and
# compares the freshly emitted BENCH_*.json files against the committed
# baselines at the repo root.  Fails when
#   * any ESOP case regresses its final term count by more than 10%,
#   * the DSE engine's cached sweep regresses: its cached-vs-sequential
#     speedup ratio or its absolute wall clock drops more than 25%
#     (machine-dependent band: the cached half is a sub-second wall
#     clock, and losing the memoization collapses the ratio to ~1x), or
#     its costs diverge from the sequential path,
#   * the task-graph batch sweep regresses: costs diverge from the serial
#     one-design-at-a-time driver, its tail-only-vs-task-graph speedup
#     drops more than 25% against the committed baseline (both halves are
#     ~0.1 s wall clocks, so it gets the machine-dependent band), or no
#     two tasks
#     of a multi-worker sweep ever overlapped in time (max_concurrent <= 1,
#     the dead-parallelism canary: a scheduler that silently serialized
#     would still produce identical results; zero steals alone only warns —
#     idle workers can drain whole designs from the injection queue without
#     stealing),
#   * the persistent artifact store regresses: the warm pass of the batch
#     sweep against a freshly re-opened store recomputes any stage artifact
#     (it must be all store hits, zero misses) or its costs diverge from the
#     cold pass, or the daemon's repeat query is not answered from cache at
#     least 10x faster than the first synthesis, or a restarted daemon
#     instance on the same store root fails to answer from disk, or N
#     identical in-flight daemon queries fail to coalesce into exactly one
#     synthesis with bit-identical answers (coalesced_ok, schema v5),
#   * the verification tiers diverge (scalar vs block vs SAT accept/reject),
#     a corrupted circuit slips through, or the block-vs-scalar speedup
#     drops more than 10% against the committed baseline,
#   * the SIMD-wide engine regresses (schema v3): any sim width (w64 /
#     w256 / w512) produces a different verdict or counterexample than the
#     64-bit oracle on the mixed pass/fail frontier (widths_agree), or the
#     sustained per-word verification throughput of the w512 lane group
#     vs the retained 64-bit engine (width_speedup, persistent engines,
#     spec walk included on both sides) falls below 4x in aggregate or
#     3.5x on any exhaustive case,
#   * the AVX build (QSYN_SIMD=native) and the portable build (QSYN_SIMD
#     default off) disagree on any verdict, counterexample bit string, or
#     cross-width identity in a fresh --sim-only run of bench_verify,
#   * the incremental SAT engine regresses: aggregate SAT-tier wall clock
#     (or the incremental-vs-monolithic speedup, measured in the same run)
#     more than 15% worse than the committed baseline, or the NEWTON(8)
#     hierarchical miter below its 10x floor,
#   * docs/ARCHITECTURE.md is missing or no longer mentions every src/*
#     subdirectory.
# Finally reruns the verification + store test suites under
# AddressSanitizer (QSYN_SANITIZE=address) — the block engine is all raw
# word indexing and the store parses untrusted on-disk bytes — the
# verification + robustness + scheduler + store suites under
# UndefinedBehaviorSanitizer, and the robustness + scheduler + daemon
# suites under ThreadSanitizer (the daemon coalesces concurrent requests
# on a shared pool).  Both sanitizer builds of test_verify compile with
# QSYN_SIMD=native so the AVX2/AVX-512 kernels themselves run
# instrumented, not just the portable fallback.
#
# Every benchmark invocation runs inside a hard `timeout` ceiling
# (BENCH_TIMEOUT seconds, default 1200): a hung benchmark is exactly the
# failure mode the budget machinery guards against, so it must fail this
# gate with a diagnostic instead of wedging the run.
#
# Usage: scripts/run_bench.sh [--quick]
#   --quick   run the reduced workload sets (faster; compares only the
#             cases present in both files)

set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)
BUILD_DIR="$REPO_ROOT/build-bench"

QUICK_ARGS=()
if [[ "${1:-}" == "--quick" ]]; then
  QUICK_ARGS+=(--quick)
fi

BENCH_TIMEOUT="${BENCH_TIMEOUT:-1200}"
run_bench() {
  local label="$1"
  shift
  local status=0
  timeout --kill-after=30 "$BENCH_TIMEOUT" "$@" || status=$?
  if [[ $status -eq 124 || $status -eq 137 ]]; then
    echo "BENCH TIMEOUT: $label did not finish within the ${BENCH_TIMEOUT}s hard ceiling" \
         "(command: $*)" >&2
    exit 1
  elif [[ $status -ne 0 ]]; then
    echo "BENCH FAILED: $label exited with status $status (command: $*)" >&2
    exit 1
  fi
}

# The bench build enables every SIMD backend the host toolchain supports;
# runtime cpuid dispatch keeps the binary correct on any machine.
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release -DQSYN_SIMD=native
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_esop bench_dse bench_verify

# --- ESOP term-count gate ----------------------------------------------------

BASELINE="$REPO_ROOT/BENCH_esop.json"
FRESH="$BUILD_DIR/BENCH_esop.json"
run_bench bench_esop "$BUILD_DIR/bench/bench_esop" --out "$FRESH" "${QUICK_ARGS[@]}"

if [[ ! -f "$BASELINE" ]]; then
  echo "No committed baseline at $BASELINE; copy $FRESH there to create one."
  exit 1
fi

python3 - "$BASELINE" "$FRESH" <<'EOF'
import json
import sys

TERM_REGRESSION_LIMIT = 0.10

with open(sys.argv[1]) as f:
    baseline = {c["name"]: c for c in json.load(f)["cases"]}
with open(sys.argv[2]) as f:
    fresh = {c["name"]: c for c in json.load(f)["cases"]}

failures = []
for name, base in sorted(baseline.items()):
    new = fresh.get(name)
    if new is None:
        continue  # quick runs omit the larger cases
    if new.get("verified") is False:
        failures.append(f"{name}: minimized ESOP no longer matches the input function")
    limit = base["terms_final"] * (1.0 + TERM_REGRESSION_LIMIT)
    if new["terms_final"] > limit:
        failures.append(
            f"{name}: terms_final {new['terms_final']} vs baseline "
            f"{base['terms_final']} (> {TERM_REGRESSION_LIMIT:.0%} regression)"
        )
    speed = ""
    if new.get("exorcism_ms") and base.get("exorcism_ms"):
        speed = f"  exorcism {base['exorcism_ms']:.2f} -> {new['exorcism_ms']:.2f} ms"
    print(f"{name}: terms {base['terms_final']} -> {new['terms_final']}{speed}")

if failures:
    print("\nBENCHMARK REGRESSIONS:")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print("\nesop benchmark OK (term counts within {:.0%} of baseline)".format(TERM_REGRESSION_LIMIT))
EOF

# --- DSE wall-clock gate -----------------------------------------------------

DSE_BASELINE="$REPO_ROOT/BENCH_dse.json"
DSE_FRESH="$BUILD_DIR/BENCH_dse.json"
# --threads 1: the gate measures the caching engine; thread-count
# differences between machines must not mask (or fake) a regression.
run_bench bench_dse "$BUILD_DIR/bench/bench_dse" --threads 1 --out "$DSE_FRESH" "${QUICK_ARGS[@]}"

if [[ ! -f "$DSE_BASELINE" ]]; then
  echo "No committed baseline at $DSE_BASELINE; copy $DSE_FRESH there to create one."
  exit 1
fi

python3 - "$DSE_BASELINE" "$DSE_FRESH" <<'EOF'
import json
import sys

WALL_REGRESSION_LIMIT = 0.10
# Absolute wall clocks swing up to ~12% run-to-run on shared containers
# (same allowance as the verify gate's wall-clock bands); the 10% band
# stays on the machine-independent speedup ratios, which divide the
# noise out.
WALL_ABS_REGRESSION_LIMIT = 0.25

with open(sys.argv[1]) as f:
    baseline = json.load(f)
with open(sys.argv[2]) as f:
    fresh = json.load(f)

failures = []
if not fresh.get("all_identical", False):
    failures.append("cached sweep costs diverged from the sequential path")
if fresh.get("verify", False) and not fresh.get("all_verified", False):
    failures.append("a swept configuration failed verification")

# --- task-graph batch-sweep gates (schema v3) --------------------------------
sweep = fresh.get("sweep", {})
base_sweep = baseline.get("sweep", {})
if not sweep:
    failures.append("fresh run has no batch-sweep section (schema < 3?)")
else:
    if not sweep.get("identical", False):
        failures.append("task-graph batch sweep costs diverged from the serial driver")
    # Dead-parallelism canary: on a multi-worker pool some of the batch
    # graph's tasks MUST overlap in time (max_concurrent is the peak
    # overlap of measured task start/end intervals); a scheduler that
    # silently serialized would still produce identical results but never
    # exceed 1.  Steals are NOT a reliable canary — batch seeds are
    # submitted onto the shared injection queue, so idle workers can pick
    # up whole designs without ever stealing — so zero steals only warns.
    if sweep.get("threads", 0) > 1 and sweep.get("max_concurrent", 2) <= 1:
        failures.append(
            "no task overlap on a {}-worker batch sweep (max_concurrent "
            "{}): the scheduler silently serialized".format(
                sweep.get("threads"), sweep.get("max_concurrent")
            )
        )
    if sweep.get("threads", 0) > 1 and sweep.get("steals", 0) == 0:
        print(
            "WARNING: zero steals on a {}-worker batch sweep (legal when "
            "workers feed off the injection queue, but unusual)".format(
                sweep.get("threads")
            )
        )
    print(
        "sweep: tail-only {:.3f} s vs task-graph {:.3f} s ({:.2f}x) on {} threads, "
        "{} tasks / {} coalesced / {} steals / {} peak concurrent, "
        "critical path {:.3f} s".format(
            sweep.get("tail_only_wall_s", 0.0),
            sweep.get("task_graph_wall_s", 0.0),
            sweep.get("speedup", 0.0),
            sweep.get("threads", 0),
            sweep.get("tasks_run", 0),
            sweep.get("coalesced", 0),
            sweep.get("steals", 0),
            sweep.get("max_concurrent", 0),
            sweep.get("critical_path_s", 0.0),
        )
    )
    # Tail-only-vs-task-graph speedup ratio, both halves measured in the
    # same fresh run.  On a single hardware thread the ratio sits near
    # 1.0x (the graph engine must merely not be slower); on real
    # multicore hardware the committed baseline carries the parallel win
    # and this catches losing it.  Both halves are ~0.1 s wall clocks, so
    # scheduler jitter moves the ratio by ~20% run-to-run (0.81-0.98x
    # measured on identical binaries) — this gets the wide wall-clock
    # band, not the 10% ratio band.
    base_ratio = base_sweep.get("speedup", 0.0)
    fresh_ratio = sweep.get("speedup", 0.0)
    if base_ratio > 0 and fresh_ratio < base_ratio * (1.0 - WALL_ABS_REGRESSION_LIMIT):
        failures.append(
            f"batch-sweep tail-only-vs-task-graph speedup {fresh_ratio:.2f}x vs "
            f"baseline {base_ratio:.2f}x (> {WALL_ABS_REGRESSION_LIMIT:.0%} regression)"
        )

# --- persistent-store gates (schema v4) --------------------------------------
DAEMON_SPEEDUP_FLOOR = 10.0

store_sweep = fresh.get("store_sweep", {})
if not store_sweep:
    failures.append("fresh run has no store_sweep section (schema < 4?)")
else:
    print(
        "store sweep: cold {:.3f} s ({} misses) -> warm {:.3f} s "
        "({} misses, {} store hits)".format(
            store_sweep.get("cold_wall_s", 0.0),
            store_sweep.get("cold_misses", 0),
            store_sweep.get("warm_wall_s", 0.0),
            store_sweep.get("warm_misses", 0),
            store_sweep.get("warm_store_hits", 0),
        )
    )
    if not store_sweep.get("identical", False):
        failures.append("warm store sweep costs diverged from the cold pass")
    if not store_sweep.get("recompute_free", False):
        failures.append(
            "warm store sweep recomputed stage artifacts ({} misses, {} store "
            "hits vs {} cold misses): the disk tier is not serving".format(
                store_sweep.get("warm_misses", -1),
                store_sweep.get("warm_store_hits", -1),
                store_sweep.get("cold_misses", -1),
            )
        )

daemon = fresh.get("daemon", {})
if not daemon:
    failures.append("fresh run has no daemon section (schema < 4?)")
else:
    print(
        "daemon: first {:.6f} s -> repeat {:.6f} s ({:.0f}x)".format(
            daemon.get("first_s", 0.0),
            daemon.get("repeat_s", 0.0),
            daemon.get("speedup", 0.0),
        )
    )
    if not daemon.get("repeat_from_cache", False):
        failures.append("daemon repeat query was not served from the result cache")
    if not daemon.get("restart_from_cache", False):
        failures.append(
            "restarted daemon instance did not answer the repeat query from the store"
        )
    if daemon.get("speedup", 0.0) < DAEMON_SPEEDUP_FLOOR:
        failures.append(
            "daemon repeat query only {:.1f}x faster than the first synthesis "
            "(< {:.0f}x floor)".format(
                daemon.get("speedup", 0.0), DAEMON_SPEEDUP_FLOOR
            )
        )
    # Cross-request coalescing gate (schema v5): N identical in-flight
    # queries against a fresh daemon must run exactly one synthesis, and
    # every client must get the same payload.
    if "concurrent_clients" not in daemon:
        failures.append("fresh run has no concurrent-clients daemon case (schema < 5?)")
    else:
        print(
            "daemon: {} concurrent identical clients -> {} synthesis in "
            "{:.6f} s".format(
                daemon.get("concurrent_clients", 0),
                daemon.get("concurrent_synthesized", -1),
                daemon.get("concurrent_wall_s", 0.0),
            )
        )
        if daemon.get("concurrent_synthesized", -1) != 1:
            failures.append(
                "{} identical in-flight daemon queries ran {} syntheses "
                "(must coalesce into exactly 1)".format(
                    daemon.get("concurrent_clients", 0),
                    daemon.get("concurrent_synthesized", -1),
                )
            )
        if not daemon.get("coalesced_ok", False):
            failures.append(
                "concurrent daemon clients disagreed on the answer or got errors"
            )

base_cases = {c["name"]: c for c in baseline["cases"]}
fresh_cases = {c["name"]: c for c in fresh["cases"]}
base_total = 0.0
fresh_total = 0.0
base_seq = 0.0
fresh_seq = 0.0
for name, base in sorted(base_cases.items()):
    new = fresh_cases.get(name)
    if new is None:
        continue  # quick runs omit the larger cases
    base_total += base["cached_wall_s"]
    fresh_total += new["cached_wall_s"]
    base_seq += base["seq_wall_s"]
    fresh_seq += new["seq_wall_s"]
    print(
        f"{name}: cached {base['cached_wall_s']:.3f} -> {new['cached_wall_s']:.3f} s"
        f"  (speedup vs sequential {new['speedup']:.2f}x)"
    )

# Primary gate: cached-vs-sequential speedup, both halves measured in
# the same fresh run.  Losing the memoization collapses this ratio from
# ~4x to ~1x; the cached half is a sub-second wall clock, so run-to-run
# scheduler jitter moves the ratio by ~12% on identical binaries
# (3.7-4.2x measured) — it gets the wide machine-dependent band, which
# still sits far above the ~1x failure mode.
base_speedup = (base_seq / base_total) if base_total > 0 else 0.0
fresh_speedup = (fresh_seq / fresh_total) if fresh_total > 0 else 0.0
if base_speedup > 0 and fresh_speedup < base_speedup * (1.0 - WALL_ABS_REGRESSION_LIMIT):
    failures.append(
        f"cached-vs-sequential speedup {fresh_speedup:.2f}x vs baseline "
        f"{base_speedup:.2f}x (> {WALL_ABS_REGRESSION_LIMIT:.0%} regression)"
    )

# Secondary, machine-dependent gate: absolute cached wall clock.  Only
# meaningful against a baseline recorded on the same machine — re-baseline
# BENCH_dse.json there (see README) if this fires on different hardware.
if base_total > 0 and fresh_total > base_total * (1.0 + WALL_ABS_REGRESSION_LIMIT):
    failures.append(
        f"cached sweep wall clock {fresh_total:.3f} s vs baseline {base_total:.3f} s "
        f"(> {WALL_ABS_REGRESSION_LIMIT:.0%} regression; machine-dependent — "
        f"re-baseline if hardware changed)"
    )

if failures:
    print("\nBENCHMARK REGRESSIONS:")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print(
    "\ndse benchmark OK (cached wall {:.3f} s vs baseline {:.3f} s, within {:.0%})".format(
        fresh_total, base_total, WALL_ABS_REGRESSION_LIMIT
    )
)
EOF

# --- verification-engine gate ------------------------------------------------

VERIFY_BASELINE="$REPO_ROOT/BENCH_verify.json"
VERIFY_FRESH="$BUILD_DIR/BENCH_verify.json"
run_bench bench_verify "$BUILD_DIR/bench/bench_verify" --out "$VERIFY_FRESH" "${QUICK_ARGS[@]}"

if [[ ! -f "$VERIFY_BASELINE" ]]; then
  echo "No committed baseline at $VERIFY_BASELINE; copy $VERIFY_FRESH there to create one."
  exit 1
fi

python3 - "$VERIFY_BASELINE" "$VERIFY_FRESH" <<'EOF'
import json
import sys

# Wall-clock ratios swing ~20% run-to-run on shared containers (the gate
# runs right after a parallel build), so the regression band is wide; the
# machine-independent hard criterion is the 20x per-case floor — losing
# the bit-parallelism would show up as a ~60x drop, far outside both.
SPEEDUP_REGRESSION_LIMIT = 0.25
SPEEDUP_FLOOR = 20.0  # every case must keep a >= 20x block-vs-scalar win

SAT_REGRESSION_LIMIT = 0.15       # incremental-vs-monolithic speedup band
SAT_WALL_REGRESSION_LIMIT = 0.25  # absolute SAT wall clock: same run-to-run
                                  # noise allowance as the block gate
SAT_NEWTON8_FLOOR = 10.0          # incremental-vs-monolithic on the flagship miter

# Schema v3 (SIMD-wide engine): sustained per-word verification throughput
# of the w512 lane group vs the retained 64-bit engine, persistent engines,
# spec walk included on both sides (best-of-5 interleaved in the bench).
# Whole-case wall clocks (wide_ms / frontier) are informational: at n=7/8 a
# 512-lane group wraps the whole input space.  Measured regimes on this
# container: 4.3-7.7x with the AVX-512 kernels dispatched, 0.6-1.6x if the
# dispatch silently pins the portable fallback — the per-case floor sits
# between them below the thermal noise of the native range, and the
# aggregate (summed word costs, dominated by the larger, stabler cases)
# keeps the 4x claim gated.
WIDTH_SPEEDUP_FLOOR = 3.5
WIDTH_SPEEDUP_AGG_FLOOR = 4.0

with open(sys.argv[1]) as f:
    baseline = {c["name"]: c for c in json.load(f)["cases"]}
with open(sys.argv[2]) as f:
    fresh_doc = json.load(f)
fresh = {c["name"]: c for c in fresh_doc["cases"]}

failures = []
if not fresh_doc.get("all_agree", False):
    failures.append("verification tiers diverged or a corrupted circuit slipped through")
if fresh_doc.get("schema_version", 0) < 3:
    failures.append(
        "fresh BENCH_verify.json has schema_version "
        f"{fresh_doc.get('schema_version', 0)} (< 3): no SIMD-wide metrics"
    )
if not fresh_doc.get("widths_agree", False):
    failures.append(
        "a sim width (w64/w256/w512) diverged from the 64-bit oracle's "
        "verdicts or counterexamples on the mixed frontier"
    )

base_scalar = base_block = fresh_scalar = fresh_block = 0.0
base_sat = base_mono = fresh_sat = fresh_mono = 0.0
fresh_block64_word = fresh_wide_word = 0.0
for name, base in sorted(baseline.items()):
    new = fresh.get(name)
    if new is None:
        continue  # quick runs omit the larger cases
    if not new.get("tiers_agree", False):
        failures.append(f"{name}: scalar/block/SAT accept-reject divergence")
    if not new.get("corrupt_rejected", False):
        failures.append(f"{name}: corrupted circuit not rejected by every tier")
    if new["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"{name}: block-vs-scalar speedup {new['speedup']:.1f}x below the "
            f"{SPEEDUP_FLOOR:.0f}x floor"
        )
    if name == "newton-n8-hier" and new.get("sat_speedup", 0.0) < SAT_NEWTON8_FLOOR:
        failures.append(
            f"{name}: incremental-vs-monolithic SAT speedup "
            f"{new.get('sat_speedup', 0.0):.1f}x below the {SAT_NEWTON8_FLOOR:.0f}x floor"
        )
    if not new.get("widths_agree", False):
        failures.append(f"{name}: wide-engine verdicts diverged across sim widths")
    if new.get("width_speedup", 0.0) < WIDTH_SPEEDUP_FLOOR:
        failures.append(
            f"{name}: w512 per-word throughput only {new.get('width_speedup', 0.0):.1f}x "
            f"the 64-bit engine (< {WIDTH_SPEEDUP_FLOOR:.1f}x floor; "
            f"{new.get('block64_word_us', 0.0):.2f} -> {new.get('wide_word_us', 0.0):.2f} "
            f"us/word, backend {fresh_doc.get('simd_backend', '?')})"
        )
    fresh_block64_word += new.get("block64_word_us", 0.0)
    fresh_wide_word += new.get("wide_word_us", 0.0)
    base_scalar += base["scalar_ms"]
    base_block += base["block_ms"]
    fresh_scalar += new["scalar_ms"]
    fresh_block += new["block_ms"]
    base_sat += base.get("sat_ms", 0.0)
    base_mono += base.get("sat_mono_ms", 0.0)
    fresh_sat += new.get("sat_ms", 0.0)
    fresh_mono += new.get("sat_mono_ms", 0.0)
    print(
        f"{name}: block {base['block_ms']:.4f} -> {new['block_ms']:.4f} ms"
        f"  (speedup {new['speedup']:.1f}x vs baseline {base['speedup']:.1f}x)"
        f"  word {new.get('block64_word_us', 0.0):.2f} -> "
        f"{new.get('wide_word_us', 0.0):.2f} us ({new.get('width_speedup', 0.0):.1f}x)"
        f"  frontier {new.get('frontier_speedup', 0.0):.1f}x"
        f"  sat {base.get('sat_ms', 0.0):.2f} -> {new.get('sat_ms', 0.0):.2f} ms"
        f" ({new.get('sat_speedup', 0.0):.1f}x vs mono)"
    )

# The >= 4x wide-vs-64-bit claim, gated on the aggregate per-word costs
# (same-run, machine-independent; dominated by the larger, stabler cases).
agg_width_speedup = (fresh_block64_word / fresh_wide_word) if fresh_wide_word > 0 else 0.0
if agg_width_speedup < WIDTH_SPEEDUP_AGG_FLOOR:
    failures.append(
        f"aggregate w512 per-word throughput {agg_width_speedup:.2f}x the 64-bit "
        f"engine (< {WIDTH_SPEEDUP_AGG_FLOOR:.0f}x floor; backend "
        f"{fresh_doc.get('simd_backend', '?')})"
    )

# Machine-independent gate on the AGGREGATE speedup (both halves measured
# in the same fresh run): per-case sub-millisecond block timings are too
# noisy to gate individually at 10%, the aggregate is dominated by the
# larger, stabler cases.
base_speedup = (base_scalar / base_block) if base_block > 0 else 0.0
fresh_speedup = (fresh_scalar / fresh_block) if fresh_block > 0 else 0.0
if base_speedup > 0 and fresh_speedup < base_speedup * (1.0 - SPEEDUP_REGRESSION_LIMIT):
    failures.append(
        f"aggregate block-vs-scalar speedup {fresh_speedup:.1f}x vs baseline "
        f"{base_speedup:.1f}x (> {SPEEDUP_REGRESSION_LIMIT:.0%} regression)"
    )

# SAT-tier gates.  Machine-independent primary: the aggregate
# incremental-vs-monolithic speedup, both engines timed in the same fresh
# run.  Machine-dependent secondary: absolute aggregate SAT wall clock vs
# the committed baseline (re-baseline on hardware changes, see README).
base_sat_speedup = (base_mono / base_sat) if base_sat > 0 else 0.0
fresh_sat_speedup = (fresh_mono / fresh_sat) if fresh_sat > 0 else 0.0
if base_sat_speedup > 0 and fresh_sat_speedup < base_sat_speedup * (1.0 - SAT_REGRESSION_LIMIT):
    failures.append(
        f"aggregate incremental-vs-monolithic SAT speedup {fresh_sat_speedup:.1f}x vs "
        f"baseline {base_sat_speedup:.1f}x (> {SAT_REGRESSION_LIMIT:.0%} regression)"
    )
if base_sat > 0 and fresh_sat > base_sat * (1.0 + SAT_WALL_REGRESSION_LIMIT):
    failures.append(
        f"aggregate SAT-tier wall clock {fresh_sat:.2f} ms vs baseline {base_sat:.2f} ms "
        f"(> {SAT_WALL_REGRESSION_LIMIT:.0%} regression; machine-dependent — "
        f"re-baseline if hardware changed)"
    )

if failures:
    print("\nBENCHMARK REGRESSIONS:")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print(
    "\nverify benchmark OK (aggregate speedup {:.1f}x vs baseline {:.1f}x, "
    "SAT tier {:.1f}x vs mono, w512 per-word {:.2f}x aggregate / "
    ">= {:.2f}x per case on {} backend; tiers and widths agree)".format(
        fresh_speedup,
        base_speedup,
        fresh_sat_speedup,
        agg_width_speedup,
        fresh_doc.get("min_width_speedup", 0.0),
        fresh_doc.get("simd_backend", "?"),
    )
)
EOF

# --- cross-build verdict identity: native SIMD vs portable -------------------
# A fresh portable build (QSYN_SIMD defaults off: no AVX TUs compiled at
# all) must produce bit-identical verdicts, counterexample bit strings and
# cross-width identity to the native-SIMD bench build.  Both sides run
# --sim-only (SAT timings carry no SIMD and would double the wall clock).

PORTABLE_DIR="$REPO_ROOT/build-bench-portable"
cmake -B "$PORTABLE_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$PORTABLE_DIR" -j "$(nproc)" --target bench_verify

NATIVE_SIM_JSON="$BUILD_DIR/BENCH_verify_simonly.json"
PORTABLE_SIM_JSON="$PORTABLE_DIR/BENCH_verify_simonly.json"
run_bench bench_verify_native_simonly \
  "$BUILD_DIR/bench/bench_verify" --sim-only --out "$NATIVE_SIM_JSON" "${QUICK_ARGS[@]}"
run_bench bench_verify_portable_simonly \
  "$PORTABLE_DIR/bench/bench_verify" --sim-only --out "$PORTABLE_SIM_JSON" "${QUICK_ARGS[@]}"

python3 - "$NATIVE_SIM_JSON" "$PORTABLE_SIM_JSON" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    native_doc = json.load(f)
with open(sys.argv[2]) as f:
    portable_doc = json.load(f)

failures = []
if portable_doc.get("simd_backend") != "portable":
    failures.append(
        "the QSYN_SIMD-default build dispatched to "
        f"'{portable_doc.get('simd_backend')}' — the portable build is not portable"
    )

# The per-case fields a build could corrupt: the verdict of every tier on
# the good and corrupted circuit, the corrupted circuit's counterexample
# bit string, and the cross-width identity sweep.
VERDICT_FIELDS = ("tiers_agree", "corrupt_rejected", "widths_agree", "cex")

native = {c["name"]: c for c in native_doc["cases"]}
portable = {c["name"]: c for c in portable_doc["cases"]}
if set(native) != set(portable):
    failures.append(
        f"case sets differ: native {sorted(native)} vs portable {sorted(portable)}"
    )
for name in sorted(set(native) & set(portable)):
    for field in VERDICT_FIELDS:
        nv, pv = native[name].get(field), portable[name].get(field)
        if nv != pv:
            failures.append(
                f"{name}: {field} differs between builds (native {nv!r} "
                f"[{native_doc.get('simd_backend')}] vs portable {pv!r})"
            )

if failures:
    print("CROSS-BUILD VERDICT MISMATCH:")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print(
    "cross-build verdicts OK ({} cases bit-identical: native [{}] vs portable)".format(
        len(native), native_doc.get("simd_backend", "?")
    )
)
EOF

# --- documentation check -----------------------------------------------------
# docs/ARCHITECTURE.md is the layer map of the whole system; every source
# subdirectory must exist in it so the map cannot silently rot.

ARCH_DOC="$REPO_ROOT/docs/ARCHITECTURE.md"
if [[ ! -f "$ARCH_DOC" ]]; then
  echo "DOCS CHECK FAILED: $ARCH_DOC is missing"
  exit 1
fi
DOC_FAILURES=0
for dir in "$REPO_ROOT"/src/*/; do
  name=$(basename "$dir")
  if ! grep -q "src/$name" "$ARCH_DOC"; then
    echo "DOCS CHECK FAILED: src/$name is not mentioned in docs/ARCHITECTURE.md"
    DOC_FAILURES=1
  fi
done
if [[ "$DOC_FAILURES" -ne 0 ]]; then
  exit 1
fi
echo "docs check OK (docs/ARCHITECTURE.md covers every src/* subdirectory)"

# --- verification tests under AddressSanitizer -------------------------------
# The block and wide engines are raw uint64_t indexing over packed state
# words; run the suite instrumented on every bench invocation, with
# QSYN_SIMD=native so the AVX2/AVX-512 kernels themselves are exercised
# under instrumentation (lane-group loads/stores are the exact place an
# off-by-one-word bug would live).

ASAN_DIR="$REPO_ROOT/build-asan-verify"
cmake -B "$ASAN_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release -DQSYN_SANITIZE=address \
  -DQSYN_SIMD=native
cmake --build "$ASAN_DIR" -j "$(nproc)" --target test_verify test_store
"$ASAN_DIR/tests/test_verify"
# The artifact store is raw byte-level (de)serialization of attacker-ish
# input (any on-disk file): run its suite instrumented too.
"$ASAN_DIR/tests/test_store"
echo
echo "test_verify + test_store OK under AddressSanitizer"

# --- robustness + scheduler tests under UBSan and TSan -----------------------
# The budget/cancellation/fault-injection paths are counter arithmetic,
# atomics and cross-thread exception plumbing, and the task-graph scheduler
# adds per-worker deques with stealing on top: run both suites instrumented
# for undefined behaviour and for data races on every bench invocation.

UBSAN_DIR="$REPO_ROOT/build-ubsan-robustness"
cmake -B "$UBSAN_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release -DQSYN_SANITIZE=undefined \
  -DQSYN_SIMD=native
cmake --build "$UBSAN_DIR" -j "$(nproc)" \
  --target test_robustness test_scheduler test_store test_verify
"$UBSAN_DIR/tests/test_robustness"
"$UBSAN_DIR/tests/test_scheduler"
# The store headers round-trip enums and fixed-width counters from
# untrusted bytes: run the suite under UBSan as well.
"$UBSAN_DIR/tests/test_store"
# The wide kernels build polarity masks with shifts and ~0 arithmetic on
# 64-bit words: run the verification suite (including every differential
# wide-vs-64-bit property) under UBSan with the native kernels too.
"$UBSAN_DIR/tests/test_verify"
echo
echo "test_robustness + test_scheduler + test_store + test_verify OK" \
     "under UndefinedBehaviorSanitizer"

TSAN_DIR="$REPO_ROOT/build-tsan-robustness"
cmake -B "$TSAN_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release -DQSYN_SANITIZE=thread
cmake --build "$TSAN_DIR" -j "$(nproc)" --target test_robustness test_scheduler test_daemon
"$TSAN_DIR/tests/test_robustness"
# The scheduler suite under TSan runs at the pool widths the ctest fixtures
# pin: stealing races only exist with >= 2 workers.
QSYN_THREADS=2 "$TSAN_DIR/tests/test_scheduler"
"$TSAN_DIR/tests/test_scheduler"
# The daemon coalesces concurrent identical requests into one synthesis on
# a shared task-graph pool and upgrades cached results across budget
# classes: its suite exercises those interleavings with real client
# threads, so it runs instrumented for data races too.
"$TSAN_DIR/tests/test_daemon"
echo
echo "test_robustness + test_scheduler + test_daemon OK under ThreadSanitizer"
