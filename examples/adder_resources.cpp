/// \file adder_resources.cpp
/// \brief Resource accounting for the reversible arithmetic building blocks
/// (Cuccaro adders, controlled adders, restoring dividers) — the substrate
/// of the paper's manual baselines, and the kind of component-level cost
/// table quantum-algorithm designers need when budgeting a datapath.

#include <cstdio>

#include "baseline/arith.hpp"
#include "baseline/resdiv.hpp"
#include "reversible/cost.hpp"

int main()
{
  using namespace qsyn;

  std::printf( "Reversible arithmetic resource table (Cuccaro ripple-carry [25])\n\n" );
  std::printf( "%-26s %8s %10s %10s %8s\n", "component", "width", "qubits", "T-count", "depth" );

  for ( const unsigned w : { 4u, 8u, 16u, 32u, 64u } )
  {
    // Plain in-place adder b <- a + b.
    {
      reversible_circuit c;
      std::vector<std::uint32_t> a, b;
      for ( unsigned i = 0; i < w; ++i )
      {
        a.push_back( c.add_line( {} ) );
      }
      for ( unsigned i = 0; i < w; ++i )
      {
        b.push_back( c.add_line( {} ) );
      }
      const auto cin = c.add_line( {} );
      cuccaro_add( c, a, b, cin );
      const auto rep = report_costs( c );
      std::printf( "%-26s %8u %10u %10llu %8llu\n", "adder", w, rep.qubits,
                   static_cast<unsigned long long>( rep.t_count ),
                   static_cast<unsigned long long>( rep.depth ) );
    }
    // Controlled adder (the workhorse of textbook multiplication).
    {
      reversible_circuit c;
      std::vector<std::uint32_t> a, b;
      for ( unsigned i = 0; i < w; ++i )
      {
        a.push_back( c.add_line( {} ) );
      }
      for ( unsigned i = 0; i < w; ++i )
      {
        b.push_back( c.add_line( {} ) );
      }
      const auto cin = c.add_line( {} );
      const auto ctl = c.add_line( {} );
      cuccaro_add( c, a, b, cin, std::nullopt, control{ ctl, true } );
      const auto rep = report_costs( c );
      std::printf( "%-26s %8u %10u %10llu %8llu\n", "controlled adder", w, rep.qubits,
                   static_cast<unsigned long long>( rep.t_count ),
                   static_cast<unsigned long long>( rep.depth ) );
    }
    // Restoring divider (quotient + remainder).
    {
      const auto res = build_restoring_divider( w );
      const auto rep = report_costs( res.circuit );
      std::printf( "%-26s %8u %10u %10llu %8llu\n", "restoring divider", w, rep.qubits,
                   static_cast<unsigned long long>( rep.t_count ),
                   static_cast<unsigned long long>( rep.depth ) );
    }
  }

  std::printf( "\nObservations: the adder is linear in T (the 2w Toffolis of the\n"
               "MAJ/UMA ladders), the controlled adder roughly doubles that, and the\n"
               "divider pays one subtract + one controlled re-add per result bit,\n"
               "i.e. Theta(w^2) T — the scaling behind Table I's RESDIV column.\n" );
  return 0;
}
