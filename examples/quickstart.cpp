/// \file quickstart.cpp
/// \brief Minimal end-to-end tour of the library: generate the INTDIV(4)
/// Verilog design, run all three design flows, and print the cost tradeoff.
///
/// Build & run:  cmake --build build && ./build/examples/example_quickstart

#include <cstdio>

#include "core/flows.hpp"
#include "verilog/generators.hpp"

int main()
{
  using namespace qsyn;

  const unsigned n = 4;
  std::printf( "=== INTDIV(%u): reciprocal via Verilog integer division ===\n\n", n );
  std::printf( "%s\n", verilog::generate_intdiv( n ).c_str() );

  const struct
  {
    const char* name;
    flow_kind kind;
  } flows[] = {
      { "functional (optimum embedding + TBS)", flow_kind::functional },
      { "ESOP-based (exorcism + REVS p=0)", flow_kind::esop_based },
      { "hierarchical (xmglut + REVS)", flow_kind::hierarchical },
  };

  std::printf( "%-40s %8s %10s %8s %9s %9s\n", "flow", "qubits", "T-count", "gates",
               "runtime", "verified" );
  for ( const auto& f : flows )
  {
    flow_params params;
    params.kind = f.kind;
    const auto result = run_reciprocal_flow( reciprocal_design::intdiv, n, params );
    std::printf( "%-40s %8u %10llu %8zu %8.3fs %9s\n", f.name, result.costs.qubits,
                 static_cast<unsigned long long>( result.costs.t_count ), result.costs.gates,
                 result.runtime_seconds, result.verified ? "yes" : "NO" );
  }
  std::printf( "\nSmaller qubit counts come from the functional flow; smaller T-counts\n"
               "from the hierarchical flow — the tradeoff the paper explores.\n" );
  return 0;
}
