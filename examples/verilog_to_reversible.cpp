/// \file verilog_to_reversible.cpp
/// \brief Compile *your own* Verilog into a reversible circuit — the
/// workflow the paper proposes for quantum-algorithm designers.
///
/// Usage:
///   example_verilog_to_reversible [file.v]
/// Without an argument a built-in demo module (a 4-bit saturating
/// subtractor, the kind of small datapath block quantum kernels need) is
/// compiled through all three flows.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/flows.hpp"

static const char* demo_source = R"(
// Saturating subtractor: y = (a >= b) ? a - b : 0
module satsub(input [3:0] a, input [3:0] b, output [3:0] y);
  wire ge = a >= b;
  assign y = ge ? a - b : 4'd0;
endmodule
)";

int main( int argc, char** argv )
{
  using namespace qsyn;
  std::string source;
  if ( argc > 1 )
  {
    std::ifstream in( argv[1] );
    if ( !in )
    {
      std::fprintf( stderr, "cannot open %s\n", argv[1] );
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }
  else
  {
    source = demo_source;
    std::printf( "no file given; compiling the built-in demo module:\n%s\n", demo_source );
  }

  const struct
  {
    const char* name;
    flow_kind kind;
  } flows[] = {
      { "functional", flow_kind::functional },
      { "esop-based", flow_kind::esop_based },
      { "hierarchical", flow_kind::hierarchical },
  };
  std::printf( "%-14s %8s %12s %8s %8s %9s\n", "flow", "qubits", "T-count", "gates", "depth",
               "verified" );
  for ( const auto& f : flows )
  {
    flow_params params;
    params.kind = f.kind;
    try
    {
      const auto result = run_flow_on_verilog( source, params );
      std::printf( "%-14s %8u %12llu %8zu %8llu %9s\n", f.name, result.costs.qubits,
                   static_cast<unsigned long long>( result.costs.t_count ), result.costs.gates,
                   static_cast<unsigned long long>( result.costs.depth ),
                   result.verified ? "yes" : "NO" );
    }
    catch ( const std::exception& e )
    {
      std::printf( "%-14s failed: %s\n", f.name, e.what() );
    }
  }
  std::printf( "\nTip: the functional flow needs few inputs (explicit synthesis); the\n"
               "hierarchical flow scales to hundreds of bits.\n" );
  return 0;
}
