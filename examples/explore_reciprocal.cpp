/// \file explore_reciprocal.cpp
/// \brief Design space exploration on the reciprocal — the paper's headline
/// use case.  Runs every flow configuration on INTDIV(n) and NEWTON(n),
/// prints the (qubits, T-count) landscape with the Pareto frontier marked,
/// and compares against the handcrafted RESDIV/QNEWTON baselines.
///
/// Usage: example_explore_reciprocal [n]   (default n = 5)

#include <cstdio>
#include <cstdlib>

#include "baseline/qnewton.hpp"
#include "baseline/resdiv.hpp"
#include "core/dse.hpp"
#include "verilog/elaborator.hpp"

int main( int argc, char** argv )
{
  using namespace qsyn;
  const unsigned n = argc > 1 ? static_cast<unsigned>( std::atoi( argv[1] ) ) : 5u;

  std::printf( "Design space exploration for the %u-bit reciprocal 1/x\n", n );
  std::printf( "(page-1 claim of the paper: one Verilog source, many circuits)\n\n" );

  for ( const auto design : { reciprocal_design::intdiv, reciprocal_design::newton } )
  {
    const char* name = design == reciprocal_design::intdiv ? "INTDIV" : "NEWTON";
    std::printf( "=== %s(%u) ===\n", name, n );
    const auto mod = verilog::elaborate_verilog( reciprocal_verilog( design, n ) );
    std::printf( "elaborated AIG: %zu AND nodes\n", mod.aig.num_ands() );
    const auto points = explore( mod.aig, default_dse_configurations( n <= 9 ) );
    std::printf( "%s\n", format_dse_table( points ).c_str() );
  }

  std::printf( "=== handcrafted baselines ===\n" );
  const auto rd = report_costs( build_resdiv_reciprocal( n ).circuit );
  std::printf( "%-24s %8u %14llu\n", "RESDIV", rd.qubits,
               static_cast<unsigned long long>( rd.t_count ) );
  const auto qn = report_costs( build_qnewton( n ).circuit );
  std::printf( "%-24s %8u %14llu\n", "QNEWTON", qn.qubits,
               static_cast<unsigned long long>( qn.t_count ) );
  return 0;
}
